"""The session-based recommendation service.

:class:`RecommendationService` is the serving layer's public surface: an
always-on façade over a prepared :class:`~repro.core.planner.CrowdPlanner`
that answers a *stream* of query batches instead of one-shot calls.

* ``submit(queries) -> Ticket`` enqueues a batch (bounded queue);
  ``results(ticket)`` redeems it — batches execute lazily, strictly in
  submission order, so any interleaving of submits and collects observes
  the same global query sequence;
* ``stream(queries)`` pipelines a long query iterable through the service
  in batches, yielding :class:`~repro.serving.protocol.RecommendResponse`
  envelopes as they are produced;
* execution is delegated to a pluggable
  :class:`~repro.serving.protocol.ServingBackend`:
  :class:`InlineBackend` is the sequential oracle itself, and
  :class:`PooledBackend` a **persistent** forked worker pool — workers are
  forked once, keep warm :class:`~repro.core.truth.TruthDatabase` state
  between batches, and receive only the truth deltas the parent merged
  since their last shard, amortising the per-batch fork + clone cost of the
  old engine.

Service contract
----------------
For any backend, pool size and submission interleaving, the concatenated
results (and the planner's post-batch state) are bit-identical to the
planner answering the same queries sequentially in submission order — up to
process-local task/truth serial numbers, exactly as
:func:`~repro.serving.protocol.recommendation_fingerprint` canonicalises.
The pooled path inherits this from the shard machinery
(:mod:`repro.serving.shards`); the per-batch grouping itself cannot change
answers because batch-level optimisations are performance-only channels
(see :meth:`CrowdPlanner.recommend_batch`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import OrderedDict, deque
from multiprocessing.connection import wait as mp_wait
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..config import TRUTH_WIRE_FORMATS, ServiceConfig
from ..core.planner import CrowdPlanner, ShardPlan
from ..exceptions import ServingError
from ..routing.base import RouteQuery
from .protocol import (
    BatchExecution,
    BatchTimings,
    RecommendRequest,
    RecommendResponse,
    ResultProvenance,
    ServingBackend,
    Ticket,
    encode_truth_delta,
    wrap_requests,
)
from .shards import ShardJob, ShardOutcome, execute_shard_job, merge_shard_outcomes

QueryLike = Union[RouteQuery, RecommendRequest]


# ------------------------------------------------------------ inline backend
class InlineBackend(ServingBackend):
    """The sequential oracle as a backend: no shards, no processes.

    Every other backend is tested against this one — it *is*
    ``planner.recommend_batch`` with envelopes around it.
    """

    name = "inline"

    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> BatchExecution:
        if self.planner is None:
            raise ServingError("backend is not bound to a planner")
        if plan is not None:
            raise ServingError("the inline backend does not accept shard plans")
        started = time.perf_counter()
        results = self.planner.recommend_batch(
            list(queries), share_candidate_generation=share_candidate_generation
        )
        elapsed = time.perf_counter() - started
        pid = os.getpid()
        return BatchExecution(
            results=results,
            origins=[(None, pid) for _ in results],
            execute_s=elapsed,
        )


# ------------------------------------------------------------ pooled backend
def _pool_worker_main(conn, planner: CrowdPlanner) -> None:
    """Long-lived pool worker loop (child process, entered right after fork).

    The worker's ``planner`` is its fork-inherited copy of the parent's —
    the *base* whose truth store is kept warm across batches: ``run`` and
    ``sync`` messages carry the truths the parent merged since this worker
    last heard from it — as a columnar
    :class:`~repro.serving.protocol.TruthDeltaBlock` or a pickled object
    list, whichever codec the backend is configured with;
    :meth:`TruthDatabase.adopt_all` accepts both and preserves parent ids,
    keeping lookup tie-breaks identical — and each shard then executes on a
    fresh clone over a copy-on-write slice of the warm base.  Strict
    request/reply: every message gets exactly one response.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        # Exceptions cross the pipe as rendered text: exception objects with
        # custom constructors do not round-trip through pickle.  A failure
        # while adopting deltas is reported as "desync" — the warm base may
        # be partially updated, so the parent must retire this worker — while
        # a failure during shard execution leaves the base intact ("error").
        try:
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", os.getpid()))
            elif kind in ("sync", "run"):
                try:
                    planner.truths.adopt_all(message[1])
                except Exception:
                    conn.send(("desync", os.getpid(), traceback.format_exc()))
                    continue
                if kind == "sync":
                    conn.send(("synced", os.getpid()))
                    continue
                try:
                    outcomes = [execute_shard_job(planner, job) for job in message[2]]
                except Exception:
                    conn.send(("error", os.getpid(), traceback.format_exc()))
                    continue
                conn.send(("done", os.getpid(), outcomes))
            else:  # pragma: no cover - protocol guard
                conn.send(("error", os.getpid(), f"unknown message kind {kind!r}"))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    conn.close()


class _PoolWorker:
    """Parent-side handle of one pool worker."""

    __slots__ = ("process", "conn", "pid", "cursor", "dead")

    def __init__(self, process, conn, cursor: int):
        self.process = process
        self.conn = conn
        self.pid = process.pid
        self.cursor = cursor  # parent truths already synced to this worker
        self.dead = False

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def mark_dead(self) -> None:
        self.dead = True
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class PooledBackend(ServingBackend):
    """Persistent forked worker pool with warm truth partitions.

    Workers are forked once (on the first batch) and inherit the full
    planner substrate — including state that cannot be pickled — through
    ``fork``.  Across batches each worker keeps its base truth store in
    sync with the parent via streamed deltas, so consecutive batches pay
    only shard-clone construction, never a fork or a whole-store clone.

    ``persistent=False`` degrades to the old per-batch behaviour (fork,
    serve one batch, stop) — kept as the baseline the ``crowd_stream``
    benchmark and the deprecated engine shim measure against.  When
    ``use_processes`` is false or the platform offers no ``fork`` start
    method, shards execute inline through the same clone-and-merge
    machinery, keeping results identical everywhere.

    Truth deltas stream to workers in the codec named by ``truth_wire``:
    ``"columnar"`` (default) encodes each delta as a
    :class:`~repro.serving.protocol.TruthDeltaBlock` — node-index arrays,
    several times smaller on the wire than the ``"pickle"`` object fallback
    — and the worker's :meth:`TruthDatabase.adopt_all` decodes it against
    its fork-inherited network, so adopted truths are identical either way.

    A worker crash never fails a batch: its shard jobs are resubmitted to a
    healthy worker (or served inline by the parent when none remains), and
    with ``respawn_workers`` (the default) the lost capacity is restored at
    the next batch by re-forking one replacement per dead worker — the
    replacement inherits the parent's current planner (truth store
    included) through ``fork``, so it starts exactly as synced as a
    freshly-dispatched survivor.
    """

    name = "pooled"

    def __init__(
        self,
        pool_size: Optional[int] = None,
        use_processes: bool = True,
        persistent: bool = True,
        merge_every_batches: int = 1,
        truth_wire: str = "columnar",
        respawn_workers: bool = True,
    ):
        super().__init__()
        if pool_size is not None and pool_size < 1:
            raise ServingError("pool_size must be at least 1")
        if merge_every_batches < 1:
            raise ServingError("merge_every_batches must be at least 1")
        if truth_wire not in TRUTH_WIRE_FORMATS:
            raise ServingError(
                f"truth_wire must be one of {TRUTH_WIRE_FORMATS}, got {truth_wire!r}"
            )
        self.pool_size = pool_size
        self.use_processes = use_processes
        self.persistent = persistent
        self.merge_every_batches = merge_every_batches
        self.truth_wire = truth_wire
        self.respawn_workers = respawn_workers
        self.batches_executed = 0
        self._workers: List[_PoolWorker] = []
        # One-entry memo of the last encoded delta (see _wire_delta).
        self._wire_cache: Optional[Tuple[Tuple[int, int], object]] = None

    # -------------------------------------------------------------- plumbing
    def bind(self, planner: CrowdPlanner) -> None:
        if self.planner is not None and self.planner is not planner:
            raise ServingError("backend is already bound to a different planner")
        self.planner = planner

    def resolved_pool_size(self) -> int:
        if self.pool_size is not None:
            return self.pool_size
        return os.cpu_count() or 1

    def _can_fork(self) -> bool:
        return self.use_processes and "fork" in multiprocessing.get_all_start_methods()

    def worker_pids(self) -> List[int]:
        return [worker.pid for worker in self._workers if worker.alive]

    def close(self) -> None:
        self._stop_pool()

    # ------------------------------------------------------------- execution
    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> BatchExecution:
        planner = self.planner
        if planner is None:
            raise ServingError("backend is not bound to a planner")
        queries = list(queries)
        if not queries:
            return BatchExecution(results=[], origins=[])

        started = time.perf_counter()
        if plan is None:
            plan = planner.shard_plan(queries, self.resolved_pool_size())
        plan_s = time.perf_counter() - started

        # Warm shared read-only state before any fork so first-batch workers
        # inherit the compiled graph and source caches instead of rebuilding
        # them per process.
        planner.warm_batch(queries)
        jobs = [
            ShardJob(
                shard_id=shard.shard_id,
                indices=shard.indices,
                destination_cells=shard.destination_cells,
                queries=[queries[index] for index in shard.indices],
                share_candidate_generation=share_candidate_generation,
            )
            for shard in plan.shards
        ]

        started = time.perf_counter()
        warm = False
        if self._can_fork():
            # Warm only when an existing pool served this batch — a re-fork
            # after a whole-pool loss is a cold batch like the first one
            # (replacing individual dead workers is not: the survivors'
            # warm state is what the batch runs on).
            warm = not self._ensure_pool()
            if warm:
                self._respawn_dead()
            try:
                outcomes = self._run_on_pool(jobs)
            finally:
                if not self.persistent:
                    self._stop_pool()
        else:
            outcomes = [execute_shard_job(planner, job) for job in jobs]
        execute_s = time.perf_counter() - started

        started = time.perf_counter()
        results = merge_shard_outcomes(planner, len(queries), outcomes)
        merge_s = time.perf_counter() - started

        self.batches_executed += 1
        if self._workers and self.batches_executed % self.merge_every_batches == 0:
            self._push_sync()

        origins: List[Tuple[Optional[int], Optional[int]]] = [(None, None)] * len(queries)
        for outcome in outcomes:
            for index in outcome.indices:
                origins[index] = (outcome.shard_id, outcome.worker_pid)
        return BatchExecution(
            results=results,
            origins=origins,
            plan_s=plan_s,
            execute_s=execute_s,
            merge_s=merge_s,
            warm_pool=warm,
        )

    # ------------------------------------------------------------- pool mgmt
    def _spawn_worker(self, context, cursor: int) -> _PoolWorker:
        """Fork one worker inheriting the planner's *current* state."""
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_pool_worker_main, args=(child_conn, self.planner), daemon=True
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process, parent_conn, cursor)

    def _ensure_pool(self) -> bool:
        """Fork the pool if none is alive; ``True`` when a fork happened."""
        if any(worker.alive for worker in self._workers):
            return False
        self._workers = []
        context = multiprocessing.get_context("fork")
        cursor = self.planner.truth_cursor()
        self._workers = [
            self._spawn_worker(context, cursor) for _ in range(self.resolved_pool_size())
        ]
        return True

    def _respawn_dead(self) -> None:
        """Replace dead pool workers in place (the respawn policy).

        Called at batch start while at least one worker survives (whole-pool
        loss is `_ensure_pool`'s re-fork).  Each replacement is forked from
        the parent *now*, so it inherits the planner's current truth store —
        the same state a survivor holds after adopting every streamed delta
        — and its cursor starts at the current truth position.  Dead handles
        are dropped, so the pool returns to ``resolved_pool_size()`` workers
        instead of shrinking towards inline fallback.
        """
        if not (self.persistent and self.respawn_workers):
            return
        survivors = [worker for worker in self._workers if worker.alive]
        missing = self.resolved_pool_size() - len(survivors)
        if not survivors or missing <= 0:
            self._workers = survivors or self._workers
            return
        context = multiprocessing.get_context("fork")
        cursor = self.planner.truth_cursor()
        survivors.extend(self._spawn_worker(context, cursor) for _ in range(missing))
        self._workers = survivors

    def _stop_pool(self) -> None:
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.mark_dead()
        self._workers = []

    def _alive_workers(self) -> List[_PoolWorker]:
        return [worker for worker in self._workers if worker.alive]

    def _send(self, worker: _PoolWorker, message) -> bool:
        if not worker.alive:
            return False
        try:
            worker.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            worker.mark_dead()
            return False

    def _recv(self, worker: _PoolWorker):
        """Next reply from ``worker``, or ``None`` once it is found dead."""
        while True:
            try:
                if worker.conn.poll(0.02):
                    return worker.conn.recv()
            except (EOFError, OSError):
                worker.mark_dead()
                return None
            if not worker.process.is_alive():
                # Drain anything written before the process died.
                try:
                    if worker.conn.poll(0):
                        return worker.conn.recv()
                except (EOFError, OSError):
                    pass
                worker.mark_dead()
                return None

    def _wire_delta(self, cursor: int):
        """The truths recorded since ``cursor``, in the configured codec.

        Columnar deltas cross the pipe as a
        :class:`~repro.serving.protocol.TruthDeltaBlock`; empty deltas (the
        steady-state case for workers dispatched every batch) skip encoding
        entirely, and the pickle fallback ships the objects unchanged.
        Workers synced to the same point share one encoding: after any
        batch every participant sits at the same cursor, so the one-entry
        memo (keyed by cursor + store length — truths are append-only)
        turns N per-worker encodings of the identical delta into one.
        """
        delta = self.planner.truth_delta(cursor)
        if not delta or self.truth_wire != "columnar":
            return delta
        key = (cursor, self.planner.truth_cursor())
        cached = self._wire_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        block = encode_truth_delta(delta, self.planner.network)
        self._wire_cache = (key, block)
        return block

    def _dispatch(self, worker: _PoolWorker, jobs: List[ShardJob]) -> bool:
        """Send a run message (with the worker's missing truth deltas)."""
        if not self._send(worker, ("run", self._wire_delta(worker.cursor), jobs)):
            return False
        worker.cursor = self.planner.truth_cursor()
        return True

    def _run_on_pool(self, jobs: List[ShardJob]) -> List[ShardOutcome]:
        """Serve jobs on the pool with dynamic pull-style load balancing.

        One job per dispatch: each idle worker pulls the next queued job as
        soon as it finishes its previous one (like ``Pool.map`` with chunk
        size 1), so a skewed batch — one giant shard plus several small
        ones — never serialises small shards behind the giant.  A worker
        that dies or desyncs has its job requeued onto the remaining
        workers; with no workers left the remainder runs in-process.  A
        shard *execution* error (worker state intact) is raised to the
        caller after in-flight jobs drain.
        """
        outcomes: List[ShardOutcome] = []
        queue = deque(jobs)
        inflight: Dict[_PoolWorker, ShardJob] = {}
        error: Optional[str] = None
        while (queue and error is None) or inflight:
            if error is None:
                for worker in self._alive_workers():
                    if not queue:
                        break
                    if worker in inflight:
                        continue
                    job = queue.popleft()
                    if self._dispatch(worker, [job]):
                        inflight[worker] = job
                    else:
                        queue.appendleft(job)
                if queue and not inflight and not self._alive_workers():
                    # The whole pool is gone: serve the remainder in-process.
                    outcomes.extend(execute_shard_job(self.planner, job) for job in queue)
                    queue.clear()
                    break
            if not inflight:
                continue
            ready = mp_wait([worker.conn for worker in inflight], timeout=0.05)
            for worker in list(inflight):
                if worker.conn in ready:
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        reply = None
                    job = inflight.pop(worker)
                    if reply is None:
                        worker.mark_dead()
                        queue.append(job)
                    elif reply[0] == "done":
                        outcomes.extend(reply[2])
                    elif reply[0] == "desync":
                        # The worker's warm base is no longer trustworthy.
                        worker.mark_dead()
                        queue.append(job)
                    elif reply[0] == "error":
                        error = error or str(reply[2])
                    else:  # pragma: no cover - protocol guard
                        error = error or f"unexpected pool reply {reply[0]!r}"
                elif not worker.process.is_alive():
                    worker.mark_dead()
                    queue.append(inflight.pop(worker))
        if error is not None:
            raise ServingError(f"shard execution failed in a pool worker:\n{error}")
        return outcomes

    def _push_sync(self) -> None:
        """Stream merged truth deltas to workers that are behind (cadence)."""
        total = self.planner.truth_cursor()
        synced: List[_PoolWorker] = []
        for worker in self._alive_workers():
            if worker.cursor >= total:
                continue
            if self._send(worker, ("sync", self._wire_delta(worker.cursor))):
                worker.cursor = total
                synced.append(worker)
        for worker in synced:
            reply = self._recv(worker)
            if reply is None or reply[0] != "synced":
                # Death, or a partial adopt ("desync"): either way this
                # worker's warm base can no longer be trusted — retire it
                # rather than serve stale lookups from it later.
                worker.mark_dead()


# ---------------------------------------------------------------- the service
class RecommendationService:
    """Session-based serving façade over a prepared planner.

    Parameters
    ----------
    planner:
        A (typically prepared) :class:`CrowdPlanner`.  The service owns its
        batch-serving state while open: truths recorded by the service's
        batches land here, exactly as a sequential run would record them.
    config:
        A :class:`~repro.config.ServiceConfig`; ``None`` lifts the
        planner's own config with default serving knobs.
    backend:
        Explicit :class:`ServingBackend` instance; ``None`` builds one from
        ``config.backend``.

    The service is a context manager; :meth:`close` shuts the backend pool
    down and refuses further calls.  Uncollected pending batches are
    discarded at close (they were never executed).
    """

    def __init__(
        self,
        planner: CrowdPlanner,
        config: Optional[ServiceConfig] = None,
        backend: Optional[ServingBackend] = None,
    ):
        if config is None:
            config = ServiceConfig.from_planner_config(planner.config)
        self.planner = planner
        self.config = config
        if backend is None:
            if config.backend == "inline":
                backend = InlineBackend()
            else:
                backend = PooledBackend(
                    pool_size=config.pool_size,
                    use_processes=config.use_processes,
                    merge_every_batches=config.merge_every_batches,
                    truth_wire=config.truth_wire,
                    respawn_workers=config.respawn_workers,
                )
        backend.bind(planner)
        self.backend = backend
        self._closed = False
        self._next_request_id = 1
        self._next_ticket_id = 1
        self._next_batch_id = 1
        # Submitted-but-unexecuted batches, in submission order.
        self._pending: "OrderedDict[int, Tuple[List[RecommendRequest], bool]]" = OrderedDict()
        # Executed-but-uncollected responses, keyed by ticket id.
        self._ready: Dict[int, List[RecommendResponse]] = {}
        self._collected: Set[int] = set()

    # ------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut the backend down; the service refuses further calls."""
        if self._closed:
            return
        self._closed = True
        self.backend.close()

    def __enter__(self) -> "RecommendationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServingError("the service is closed")

    # ------------------------------------------------------------- interface
    def submit(
        self,
        queries: Union[QueryLike, Iterable[QueryLike]],
        share_candidate_generation: Optional[bool] = None,
    ) -> Ticket:
        """Enqueue one batch; returns the ticket that redeems its results.

        Accepts a single query or an iterable; raises
        :class:`~repro.exceptions.ServingError` when
        ``config.max_pending_batches`` batches already await execution.
        Submission order is execution order, whatever order tickets are
        redeemed in.
        """
        self._ensure_open()
        # Reject before consuming anything: a caller whose submit is refused
        # must be able to retry with the same (possibly generator) queries.
        if len(self._pending) >= self.config.max_pending_batches:
            raise ServingError(
                f"submission queue is full ({self.config.max_pending_batches} pending batches)"
            )
        requests, share = self._wrap(queries, share_candidate_generation)
        ticket = Ticket(ticket_id=self._next_ticket_id, size=len(requests))
        self._next_ticket_id += 1
        self._pending[ticket.ticket_id] = (requests, share)
        return ticket

    def results(self, ticket: Union[Ticket, int]) -> List[RecommendResponse]:
        """Redeem a ticket (exactly once), in submission-order semantics.

        Executes every batch submitted before the ticket's first, so the
        global query sequence the planner observes is independent of
        collection order.
        """
        self._ensure_open()
        ticket_id = ticket.ticket_id if isinstance(ticket, Ticket) else int(ticket)
        if ticket_id in self._collected:
            raise ServingError(f"ticket {ticket_id} was already collected")
        if ticket_id not in self._ready and ticket_id not in self._pending:
            raise ServingError(f"unknown ticket {ticket_id}")
        while ticket_id not in self._ready:
            self._execute_next_pending()
        self._collected.add(ticket_id)
        return self._ready.pop(ticket_id)

    def drain(self) -> None:
        """Execute every pending batch (results stay redeemable by ticket)."""
        self._ensure_open()
        while self._pending:
            self._execute_next_pending()

    def recommend(self, query: QueryLike) -> RecommendResponse:
        """Answer a single query through the full batch pipeline."""
        return self.results(self.submit(query))[0]

    def recommend_batch(
        self,
        queries: Iterable[QueryLike],
        share_candidate_generation: Optional[bool] = None,
        plan: Optional[ShardPlan] = None,
    ) -> List[RecommendResponse]:
        """Submit-and-collect one batch in a single call.

        An explicit ``plan`` (diagnostics / the deprecated engine shim)
        bypasses the ticket queue: pending batches are drained first so
        submission order is preserved, then the batch executes under the
        given plan.
        """
        if plan is None:
            return self.results(self.submit(queries, share_candidate_generation))
        self._ensure_open()
        self.drain()
        requests, share = self._wrap(queries, share_candidate_generation)
        return self._execute(requests, share, plan)

    def stream(
        self,
        queries: Iterable[QueryLike],
        batch_size: Optional[int] = None,
    ) -> Iterator[RecommendResponse]:
        """Pipeline a query iterable through the service in batches.

        Batches are submitted and redeemed lazily as the iterator is
        consumed, so an unbounded query source streams with bounded memory;
        responses arrive in submission order.
        """
        size = batch_size if batch_size is not None else self.config.stream_batch_size
        if size < 1:
            raise ServingError("batch_size must be at least 1")
        chunk: List[QueryLike] = []
        for query in queries:
            chunk.append(query)
            if len(chunk) >= size:
                for response in self.results(self.submit(chunk)):
                    yield response
                chunk = []
        if chunk:
            for response in self.results(self.submit(chunk)):
                yield response

    # ------------------------------------------------------------ diagnostics
    def worker_pids(self) -> List[int]:
        """PIDs of the backend's live pool workers (empty when in-process)."""
        return self.backend.worker_pids()

    @property
    def statistics(self):
        """The underlying planner's resolution counters."""
        return self.planner.statistics

    def plan(self, queries: Sequence[QueryLike]) -> ShardPlan:
        """The shard plan a batch would execute under (diagnostics)."""
        resolved = [
            query.query if isinstance(query, RecommendRequest) else query for query in queries
        ]
        shards = (
            self.backend.resolved_pool_size()
            if isinstance(self.backend, PooledBackend)
            else 1
        )
        return self.planner.shard_plan(resolved, shards)

    # -------------------------------------------------------------- internal
    def _wrap(
        self,
        queries: Union[QueryLike, Iterable[QueryLike]],
        share_candidate_generation: Optional[bool],
    ) -> Tuple[List[RecommendRequest], bool]:
        """Envelope queries under fresh request ids + resolve the share flag."""
        if isinstance(queries, (RouteQuery, RecommendRequest)):
            queries = [queries]
        requests = wrap_requests(queries, self._next_request_id)
        self._next_request_id += len(requests)
        share = (
            self.config.share_candidate_generation
            if share_candidate_generation is None
            else share_candidate_generation
        )
        return requests, share

    def _execute_next_pending(self) -> None:
        # Pop only after a successful execution: a backend failure leaves the
        # batch pending, so the ticket stays redeemable (retryable) instead
        # of silently becoming "unknown".
        ticket_id, (requests, share) = next(iter(self._pending.items()))
        responses = self._execute(requests, share)
        del self._pending[ticket_id]
        self._ready[ticket_id] = responses

    def _execute(
        self,
        requests: List[RecommendRequest],
        share_candidate_generation: bool,
        plan: Optional[ShardPlan] = None,
    ) -> List[RecommendResponse]:
        queries = [request.query for request in requests]
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        execution = self.backend.execute_batch(
            queries, share_candidate_generation=share_candidate_generation, plan=plan
        )
        timings = BatchTimings(
            plan_s=execution.plan_s, execute_s=execution.execute_s, merge_s=execution.merge_s
        )
        responses = []
        for request, result, (shard_id, worker_pid) in zip(
            requests, execution.results, execution.origins
        ):
            responses.append(
                RecommendResponse(
                    request=request,
                    result=result,
                    provenance=ResultProvenance(
                        backend=self.backend.name,
                        batch_id=batch_id,
                        batch_size=len(requests),
                        shard_id=shard_id,
                        worker_pid=worker_pid,
                        truth_reused=result.method == "truth_reuse",
                        warm_pool=execution.warm_pool,
                        timings=timings,
                    ),
                )
            )
        return responses
