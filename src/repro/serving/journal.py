"""Durable truth storage: append-only journal + compacted snapshots.

Everything the serving layer records into a
:class:`~repro.core.truth.TruthDatabase` dies with the process — this module
is the durability layer that lets a :class:`RecommendationService` restart
into the exact pre-crash planner truth state.

Design
------
A :class:`TruthJournal` owns one *generation* of two files inside its
directory::

    journal-<gen>.log    # append-only delta segment (one record per batch)
    snapshot-<gen>.snap  # compacted full-store snapshot (absent at gen 0)

Every executed batch appends exactly one **record** — even when its delta is
empty — so the record count doubles as a durable "batches executed" counter
for crash recovery.  A record's payload is the batch's truth delta in the
configured wire codec: the PR 5 columnar
:class:`~repro.serving.protocol.TruthDeltaBlock` (``wire="columnar"``) or the
pickled object list (``wire="pickle"``).  Replay is codec-agnostic — payloads
are decoded by duck-typing exactly like
:meth:`TruthDatabase.adopt_all <repro.core.truth.TruthDatabase.adopt_all>` —
so a journal written under one codec reads back under the other.

Records are framed with an explicit length and a CRC32 over the payload, and
the file is flushed (+ ``fsync`` by default) after every append, so the only
loss mode a crash can produce is a *torn tail*: recovery truncates the file
back to the last intact record with a warning instead of failing.

Once ``snapshot_every_truths`` truths have accumulated since the last
snapshot, the journal **compacts**: the whole store is written as a snapshot
of generation ``gen+1`` (to a temp file, fsynced, atomically renamed), a
fresh empty delta segment is started, and the old generation's files are
deleted.  Compaction preserves the durable truth/batch counters, and a crash
at any point of the rotation leaves at least one readable generation on disk.

Recovery (:meth:`TruthJournal.replay_into`) adopts the snapshot plus the tail
deltas **keeping parent truth ids** (via ``adopt_all``, which also advances
the local id sequence past every adopted id), so post-recovery lookups
tie-break exactly as the pre-crash store did; records whose ids are already
present are skipped, making replay idempotent.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import warnings
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..config import TRUTH_WIRE_FORMATS
from ..core.truth import TruthDatabase, VerifiedTruth
from ..exceptions import JournalError
from ..roadnet.graph import RoadNetwork
from .protocol import encode_truth_delta

#: File magics double as format-version markers: bump them on any frame
#: change so an old reader fails loudly instead of misparsing.
_JOURNAL_MAGIC = b"RPTJ1\n"
_SNAPSHOT_MAGIC = b"RPTS1\n"

#: Record frame: payload byte length, CRC32 of the payload, truth count.
#: The truth count is in the frame (not just the payload) so scanning a
#: journal maintains the durable counters without unpickling every record.
_FRAME = struct.Struct("<III")

_JOURNAL_NAME = re.compile(r"journal-(\d{8})\.log$")
_SNAPSHOT_NAME = re.compile(r"snapshot-(\d{8})\.snap$")


def _decode_payload(payload, network: RoadNetwork) -> List[VerifiedTruth]:
    """Materialise a record payload (block or object list) as truths."""
    decode = getattr(payload, "decode_truths", None)
    if decode is not None:
        return decode(network)
    return list(payload)


class TruthJournal:
    """Append-only on-disk log of truth deltas with compacted snapshots.

    Parameters
    ----------
    path:
        Journal directory (created if missing).  Re-opening a non-empty
        directory resumes the existing journal: the durable counters are
        restored by scanning it, a torn tail is truncated with a warning,
        and appends continue where the previous process stopped.
    wire:
        Codec for *newly appended* records: ``"columnar"``
        (:class:`~repro.serving.protocol.TruthDeltaBlock`) or ``"pickle"``.
        Reading is always codec-agnostic.
    fsync:
        Fsync after every append (the default).  The flush still happens
        when disabled, so only an OS crash — not a process crash — can
        lose acknowledged records.
    snapshot_every_truths:
        Compaction cadence (see the module docstring).
    """

    def __init__(
        self,
        path,
        *,
        wire: str = "columnar",
        fsync: bool = True,
        snapshot_every_truths: int = 512,
    ):
        if wire not in TRUTH_WIRE_FORMATS:
            raise JournalError(f"wire must be one of {TRUTH_WIRE_FORMATS}, got {wire!r}")
        if snapshot_every_truths < 1:
            raise JournalError("snapshot_every_truths must be at least 1")
        self.path = Path(path)
        self.wire = wire
        self.fsync = fsync
        self.snapshot_every_truths = snapshot_every_truths
        self._closed = False
        # Session counters (what *this* handle did, for statistics()).
        self.records_appended = 0
        self.snapshots_written = 0
        self.recovered_truncated = False

        try:
            self.path.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise JournalError(f"cannot create journal directory {self.path}: {error}") from None
        if self.path.is_file():
            raise JournalError(f"journal path {self.path} is a file, not a directory")

        self._generation = self._choose_generation()
        # Durable counters carried by the snapshot + re-scanned tail.
        self._snapshot_truths, self._snapshot_batches = self._read_snapshot_counters()
        self._truth_count = self._snapshot_truths
        self._batch_count = self._snapshot_batches
        self._tail_records: List[Tuple[int, int]] = []  # (payload offset, length)
        self._scan_tail()
        self._handle = self._open_segment_for_append()
        # On-disk footprint (segment + snapshot), measured once at open and
        # maintained incrementally so stats() never rescans the directory.
        self._disk_bytes = self._scan_disk_bytes()

    # ------------------------------------------------------------- file names
    def _journal_file(self, generation: Optional[int] = None) -> Path:
        gen = self._generation if generation is None else generation
        return self.path / f"journal-{gen:08d}.log"

    def _snapshot_file(self, generation: Optional[int] = None) -> Path:
        gen = self._generation if generation is None else generation
        return self.path / f"snapshot-{gen:08d}.snap"

    def _choose_generation(self) -> int:
        """Pick the newest usable generation on disk (0 for a fresh journal).

        A generation is usable when it is the oldest present (nothing newer
        to prefer) or its snapshot reads back intact — a crash mid-rotation
        can leave a newer snapshot without its (empty) delta segment, which
        is fine, but a corrupt snapshot falls back to the previous
        generation, whose files the rotation only deletes *after* the new
        ones are durable.  Leftover files of other generations are removed.
        """
        generations = set()
        for entry in self.path.iterdir():
            for pattern in (_JOURNAL_NAME, _SNAPSHOT_NAME):
                match = pattern.match(entry.name)
                if match:
                    generations.add(int(match.group(1)))
            if entry.suffix == ".tmp":
                entry.unlink()  # torn snapshot write: never renamed, never valid
        if not generations:
            return 0
        ordered = sorted(generations, reverse=True)
        chosen = ordered[-1]
        for generation in ordered:
            if generation == ordered[-1] or self._snapshot_is_valid(generation):
                chosen = generation
                break
            warnings.warn(
                f"truth journal {self.path}: snapshot of generation {generation} is "
                "unreadable; falling back to the previous generation",
                RuntimeWarning,
                stacklevel=3,
            )
        for generation in generations - {chosen}:
            for stale in (self._journal_file(generation), self._snapshot_file(generation)):
                if stale.exists():
                    stale.unlink()
        return chosen

    # -------------------------------------------------------------- snapshots
    def _snapshot_is_valid(self, generation: int) -> bool:
        try:
            self._read_snapshot(generation)
        except (JournalError, OSError):
            return False
        return True

    def _read_snapshot(self, generation: int):
        """Return ``(truth_count, batch_count, payload)`` of a snapshot file."""
        snapshot = self._snapshot_file(generation)
        data = snapshot.read_bytes()
        if len(data) < len(_SNAPSHOT_MAGIC) + _FRAME.size:
            raise JournalError(f"snapshot {snapshot} is truncated")
        if not data.startswith(_SNAPSHOT_MAGIC):
            raise JournalError(f"snapshot {snapshot} has a bad magic header")
        length, crc, truth_count = _FRAME.unpack_from(data, len(_SNAPSHOT_MAGIC))
        payload = data[len(_SNAPSHOT_MAGIC) + _FRAME.size:]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise JournalError(f"snapshot {snapshot} fails its CRC check")
        try:
            batch_count, encoded = pickle.loads(payload)
        except Exception:
            raise JournalError(f"snapshot {snapshot} payload does not unpickle") from None
        return truth_count, batch_count, encoded

    def _read_snapshot_counters(self) -> Tuple[int, int]:
        if not self._snapshot_file().exists():
            return 0, 0
        truth_count, batch_count, _ = self._read_snapshot(self._generation)
        return truth_count, batch_count

    # ------------------------------------------------------------ tail replay
    def _scan_tail(self) -> None:
        """Validate the delta segment, truncating a torn or corrupt tail.

        Walks record frames sequentially; the first record that is short,
        fails its CRC, or has a broken header marks the end of the durable
        prefix — everything behind it is truncated away (a crash mid-append
        can only tear the *last* record, so nothing valid is lost) and a
        warning is emitted instead of an error.
        """
        segment = self._journal_file()
        if not segment.exists():
            return
        data = segment.read_bytes()
        if not data.startswith(_JOURNAL_MAGIC):
            if data:
                warnings.warn(
                    f"truth journal {segment} has a bad magic header; starting it over",
                    RuntimeWarning,
                    stacklevel=3,
                )
            segment.unlink()
            return
        offset = len(_JOURNAL_MAGIC)
        valid_end = offset
        while True:
            if offset + _FRAME.size > len(data):
                break  # no (complete) header left: clean end or torn header
            length, crc, truth_count = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            payload = data[start:start + length]
            if len(payload) != length or zlib.crc32(payload) != crc:
                break  # torn or corrupt record
            self._tail_records.append((start, length))
            self._truth_count += truth_count
            self._batch_count += 1
            offset = start + length
            valid_end = offset
        if valid_end != len(data):
            self.recovered_truncated = True
            warnings.warn(
                f"truth journal {segment}: truncating {len(data) - valid_end} bytes of "
                f"torn tail after {len(self._tail_records)} intact record(s)",
                RuntimeWarning,
                stacklevel=3,
            )
            with open(segment, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())

    def _open_segment_for_append(self):
        segment = self._journal_file()
        if not segment.exists():
            handle = open(segment, "xb")
            handle.write(_JOURNAL_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
            self._sync_directory()
        else:
            handle = open(segment, "ab")
        return handle

    def _scan_disk_bytes(self) -> int:
        """Stat the current generation's files (open-time baseline only)."""
        total = 0
        for file in (self._journal_file(), self._snapshot_file()):
            try:
                total += file.stat().st_size
            except OSError:
                pass
        return total

    def _sync_directory(self) -> None:
        """Fsync the journal directory so renames/creates are durable."""
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -------------------------------------------------------------- accessors
    @property
    def generation(self) -> int:
        return self._generation

    @property
    def truth_count(self) -> int:
        """Truths durably recorded (snapshot + every intact delta record)."""
        return self._truth_count

    @property
    def batch_count(self) -> int:
        """Intact records ever appended — one per executed batch, so this is
        the durable "batches completed" counter crash recovery resumes at."""
        return self._batch_count

    @property
    def disk_bytes(self) -> int:
        """Current on-disk footprint (delta segment + snapshot), tracked
        incrementally — reading it never rescans or re-stats the files."""
        return self._disk_bytes

    def stats(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "wire": self.wire,
            "generation": self._generation,
            "truths": self._truth_count,
            "batches": self._batch_count,
            "disk_bytes": self._disk_bytes,
            "records_appended": self.records_appended,
            "snapshots_written": self.snapshots_written,
            "recovered_truncated": self.recovered_truncated,
        }

    # ----------------------------------------------------------------- append
    def _ensure_open(self) -> None:
        if self._closed:
            raise JournalError("the truth journal is closed")

    def _encode(self, truths: Sequence[VerifiedTruth], network: RoadNetwork):
        if not truths:
            return []
        if self.wire == "columnar":
            return encode_truth_delta(list(truths), network)
        return list(truths)

    def append(
        self,
        truths: Sequence[VerifiedTruth],
        store: TruthDatabase,
        meta: Optional[Dict[str, Any]] = None,
        allow_snapshot: bool = True,
    ) -> None:
        """Durably append one batch's truth delta (then maybe compact).

        ``truths`` may be empty — the empty record still lands, keeping the
        one-record-per-batch invariant that makes :attr:`batch_count` a
        crash-consistent progress marker.  ``store`` is the full parent
        truth store: its network keys the columnar encoding and its contents
        feed the compacted snapshot when the cadence triggers.

        ``allow_snapshot=False`` defers a cadence-triggered compaction to a
        later append.  The pipelined service uses it while journaling a
        window's batches one by one: mid-window, ``store`` already holds
        truths of batches *after* this record, so a snapshot taken here
        would durably leak state ahead of :attr:`batch_count` — recovery
        would then not land on an exact sequential prefix.  The window's
        final append re-enables snapshots, when store and journal agree
        again; the cadence check is monotone, so the compaction still
        happens, at most one window late.
        """
        self._ensure_open()
        payload = pickle.dumps(
            (dict(meta or {}), self._encode(truths, store.network)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload), len(truths)))
        self._handle.write(payload)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._tail_records.append((self._handle.tell() - len(payload), len(payload)))
        self._disk_bytes += _FRAME.size + len(payload)
        self._truth_count += len(truths)
        self._batch_count += 1
        self.records_appended += 1
        if (
            allow_snapshot
            and self._truth_count - self._snapshot_truths >= self.snapshot_every_truths
        ):
            self._compact(store)

    def snapshot(self, store: TruthDatabase) -> None:
        """Force a compaction now — e.g. to baseline a pre-populated store
        without consuming a journal record (``batch_count`` is unchanged)."""
        self._ensure_open()
        self._compact(store)

    def _compact(self, store: TruthDatabase) -> None:
        """Write a full-store snapshot as the next generation and rotate.

        Ordering is crash-safe: the snapshot becomes durable (temp file,
        fsync, atomic rename, directory fsync) *before* the fresh delta
        segment is created and the old generation is deleted, so recovery
        always finds either the old pair or the new snapshot.
        """
        next_generation = self._generation + 1
        encoded = self._encode(store.all(), store.network)
        payload = pickle.dumps((self._batch_count, encoded), protocol=pickle.HIGHEST_PROTOCOL)
        snapshot = self._snapshot_file(next_generation)
        temp = snapshot.with_suffix(".tmp")
        with open(temp, "wb") as handle:
            handle.write(_SNAPSHOT_MAGIC)
            handle.write(_FRAME.pack(len(payload), zlib.crc32(payload), len(store)))
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, snapshot)
        self._sync_directory()

        old_journal = self._journal_file()
        old_snapshot = self._snapshot_file()
        self._handle.close()
        self._generation = next_generation
        self._snapshot_truths = len(store)
        self._snapshot_batches = self._batch_count
        self._truth_count = len(store)
        self._tail_records = []
        self._handle = self._open_segment_for_append()
        for stale in (old_journal, old_snapshot):
            if stale.exists():
                stale.unlink()
        self._sync_directory()
        self.snapshots_written += 1
        # The rotated generation is exactly the new snapshot plus an empty
        # delta segment (magic only).
        self._disk_bytes = (
            len(_SNAPSHOT_MAGIC) + _FRAME.size + len(payload) + len(_JOURNAL_MAGIC)
        )

    # ----------------------------------------------------------------- replay
    def _iter_tail_payloads(self) -> Iterator[Tuple[Dict[str, Any], Any]]:
        segment = self._journal_file()
        if not segment.exists() or not self._tail_records:
            return
        with open(segment, "rb") as handle:
            for offset, length in self._tail_records:
                handle.seek(offset)
                yield pickle.loads(handle.read(length))

    def replay(self, network: RoadNetwork) -> List[VerifiedTruth]:
        """Every durable truth — snapshot then tail deltas — in record order."""
        truths: List[VerifiedTruth] = []
        if self._snapshot_file().exists():
            _, _, encoded = self._read_snapshot(self._generation)
            truths.extend(_decode_payload(encoded, network))
        for _meta, encoded in self._iter_tail_payloads():
            truths.extend(_decode_payload(encoded, network))
        return truths

    def records(self, network: RoadNetwork) -> List[Tuple[Dict[str, Any], List[VerifiedTruth]]]:
        """The tail's ``(meta, truths)`` records (diagnostics / tests)."""
        return [
            (meta, _decode_payload(encoded, network))
            for meta, encoded in self._iter_tail_payloads()
        ]

    def replay_into(self, store: TruthDatabase) -> int:
        """Adopt every durable truth into ``store``; returns how many were new.

        Ids are preserved (`adopt_all` also advances the local id sequence
        past them) and truths already present are skipped, so replaying the
        same journal twice — or into a store that already holds a prefix of
        it — is idempotent.
        """
        fresh: List[VerifiedTruth] = []
        seen = set()
        for truth in self.replay(store.network):
            if truth.truth_id in store or truth.truth_id in seen:
                continue
            seen.add(truth.truth_id)
            fresh.append(truth)
        if fresh:
            store.adopt_all(fresh)
        return len(fresh)

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._handle.close()

    def __enter__(self) -> "TruthJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
