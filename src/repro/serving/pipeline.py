"""Cross-batch shard dependency analysis — the pipelined scheduler's DAG.

:meth:`CrowdPlanner.shard_plan` proves that *within* one batch, shards whose
reach-expanded destination cells are disjoint cannot observe each other's
truth writes, which is what lets them run in parallel.  This module extends
that interaction-closure argument **across batch boundaries**: a shard of
batch N+1 needs to wait only for the in-flight batches whose shards' cell
closures intersect its own — every other in-flight batch is invisible to it
through the destination-keyed truth view, exactly as a sibling shard of the
same batch is.

:func:`batch_dependencies` reduces the pairwise intersection tests to one
rolling ``cell -> last writing batch`` map: walking the window's shard plans
in submission order, a shard's dependency is the highest-numbered earlier
batch that touched any of its cells (``-1`` when it is independent of every
in-flight batch).  The DAG dispatcher in
:class:`~repro.serving.service.PooledBackend` may dispatch a shard as soon
as all batches up to and including its dependency have **merged**; merges
themselves stay strictly in submission order, which is what keeps truth-id
issuance — and therefore every fingerprint — identical to the sequential
oracle for any overlap schedule.

Windows are always single-tenant: :class:`~repro.serving.tenancy.
WorkspaceService` gives every workspace its own
:class:`~repro.serving.RecommendationService`, so only batches of one
tenant are ever pending together and the dependency analysis never has to
reason about another tenant's truth writes (which its destination-keyed
views could not see anyway — tenants own disjoint truth stores).

Why the conservative cell-closure test is sufficient
----------------------------------------------------
All shard truth *reads* go through
:meth:`TruthDatabase.view_by_cells(shard.destination_cells)
<repro.core.truth.TruthDatabase.view_by_cells>` — a destination-keyed slice
— and all shard truth *writes* land inside the shard's own (pre-expansion)
destination cells, a subset of its expanded closure.  So batch M's writes
can reach batch N's shard only when their expanded cell sets intersect.
Dispatching shard S of batch N once batches ``0..m-1`` have merged (with
``m > dep(S)``) gives S's worker a truth base that differs from the full
sequential prefix ``0..N-1`` only by truths whose destination cells lie
outside S's closure — truths the destination-keyed view filters out
identically in both cases.  Adopting *more* merged batches than ``dep(S)``
is therefore harmless, and adopting all batches through ``dep(S)`` is
exactly enough.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.planner import ShardPlan

Cell = Tuple[int, int]


def batch_dependencies(plans: Sequence[ShardPlan]) -> List[List[int]]:
    """Per-shard batch dependencies for a window of shard plans.

    ``deps[b][s]`` is the highest index of an earlier batch in the window
    whose shards' reach-expanded destination cells intersect shard ``s`` of
    batch ``b`` — i.e. the latest in-flight batch whose truth writes the
    shard could observe.  ``-1`` means the shard depends on no in-flight
    batch and may dispatch immediately.  A shard is ready once every batch
    up to and including ``deps[b][s]`` has merged.

    Dependencies are transitively consistent by construction: merges happen
    in batch order, so "batches ``<= dep`` merged" subsumes every earlier
    dependency.
    """
    cell_last_batch: Dict[Cell, int] = {}
    deps: List[List[int]] = []
    for batch_index, plan in enumerate(plans):
        batch_deps = []
        for shard in plan.shards:
            dep = -1
            for cell in shard.destination_cells:
                dep = max(dep, cell_last_batch.get(cell, -1))
            batch_deps.append(dep)
        deps.append(batch_deps)
        # Record writes only after computing this batch's deps: shards of
        # the same batch never depend on each other here (the shard plan
        # already made them interaction-closed siblings).
        for shard in plan.shards:
            for cell in shard.destination_cells:
                cell_last_batch[cell] = batch_index
    return deps


def window_parallelism(deps: Sequence[Sequence[int]]) -> Dict[str, int]:
    """Diagnostics for a window's dependency structure.

    ``independent_shards`` counts shards that could dispatch before *any*
    merge (``dep == -1``); ``cross_batch_edges`` counts shard->batch wait
    edges; ``serialized_batches`` counts batches whose every shard depends
    on the immediately preceding batch — the fully-dependent degenerate case
    that forces barrier-equivalent scheduling.
    """
    independent = 0
    edges = 0
    serialized = 0
    for batch_index, batch_deps in enumerate(deps):
        for dep in batch_deps:
            if dep == -1:
                independent += 1
            else:
                edges += 1
        if (
            batch_index > 0
            and batch_deps
            and all(dep == batch_index - 1 for dep in batch_deps)
        ):
            serialized += 1
    return {
        "independent_shards": independent,
        "cross_batch_edges": edges,
        "serialized_batches": serialized,
    }
