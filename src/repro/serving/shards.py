"""Shard execution and merge primitives shared by every pooled path.

A *shard job* is the unit of work the serving layer hands to a worker — a
slice of a batch (whole interaction-closed components, see
:meth:`~repro.core.planner.CrowdPlanner.shard_plan`) plus the destination
cells whose truth slice the shard may observe.  The primitives here are used
identically by the persistent pool workers (:mod:`repro.serving.service`),
the per-batch forked pool behind the deprecated engine shim, and the inline
fallback:

* :func:`build_shard_clone` — a planner over a copy-on-write
  :meth:`~repro.core.truth.TruthDatabase.view_by_cells` slice of the base
  planner's truth store, with isolated evaluator/worker-pool/statistics;
* :func:`execute_shard_job` — run one job on a clone, collecting results,
  the statistics delta and the newly recorded truths;
* :func:`merge_shard_outcomes` — replay every shard's writes onto the parent
  planner in submission order, reproducing the exact state a sequential run
  would have left.

On top of those primitives sits the *intra-component pipeline*: when one
interaction component is too large to split (a city-center hotspot — every
query within reach of one dominant destination), :func:`split_oversized`
re-stages it as an **ordered dataflow of sub-shards**.  The component's
od-cell groups are condensed into atomic units (strongly connected pieces of
the visibility graph), the units form a DAG whose edges follow submission
order, and oversized units are sliced into contiguous submission-index
chunks.  Each sub-shard declares ``predecessors`` (completion gates) and
``handoff_from`` (whose recorded truths it must adopt before running); the
parent relays those hand-off deltas worker→worker with provisional truth
ids from :func:`handoff_id_base`, and :class:`ChainState` tracks the whole
dance per batch.  Merges still replay in strict submission order, so the
serving contract is untouched — the pipeline only changes *where* and *when*
slices of the component execute.

Everything that crosses a process boundary (:class:`ShardJob` down,
:class:`ShardOutcome` up) is plain picklable data; planner substrate never
travels — workers inherit it through ``fork``.
"""

from __future__ import annotations

import copy
import dataclasses
import heapq
import os
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.planner import CrowdPlanner, QueryShard, RecommendationResult, ShardPlan
from ..core.truth import VerifiedTruth, truth_id_watermark
from ..exceptions import ServingError
from ..routing.base import RouteQuery


@dataclass
class ShardJob:
    """One shard of one batch, ready to be executed anywhere.

    ``predecessors``/``handoff_from`` mirror the sub-shard chain edges of
    :class:`~repro.core.planner.QueryShard` (empty for ordinary component
    shards); ``adopt`` is filled in by the dispatcher just before the job is
    sent — the upstream hand-off truths (a plain list or a columnar
    :class:`~repro.serving.protocol.TruthDeltaBlock`) the executing clone
    adopts before running its slice.  ``tenant`` names the workspace whose
    truth store the job executes against (``""`` is the backend's default,
    single-tenant planner); pool workers use it to select the matching warm
    truth base.
    """

    shard_id: int
    indices: Tuple[int, ...]
    destination_cells: FrozenSet[Tuple[int, int]]
    queries: List[RouteQuery]
    share_candidate_generation: bool = True
    predecessors: Tuple[int, ...] = ()
    handoff_from: Tuple[int, ...] = ()
    adopt: Optional[object] = None
    tenant: str = ""


@dataclass
class ShardOutcome:
    """Everything a shard execution produced, in shard submission order."""

    shard_id: int
    indices: Tuple[int, ...]
    results: List[RecommendationResult]
    statistics_delta: Dict[str, int]
    new_truths: List[VerifiedTruth]
    worker_pid: int
    tenant: str = ""


def build_shard_clone(planner: CrowdPlanner, destination_cells) -> CrowdPlanner:
    """A planner over the shard's truth slice and a private worker pool.

    Road network, catalogue, sources, task generator, crowd backend and the
    fitted familiarity model are shared (read-only during a batch); the truth
    store (a copy-on-write destination-cell view), evaluator, worker pool,
    rewards and statistics are isolated so a shard's writes never leak into
    another shard or the base planner.
    """
    clone = CrowdPlanner(
        network=planner.network,
        catalog=planner.catalog,
        calibrator=planner.calibrator,
        sources=planner.sources,
        worker_pool=copy.deepcopy(planner.worker_pool),
        crowd_backend=planner.crowd_backend,
        config=planner.config,
        familiarity=planner.familiarity,
        task_generator=planner.task_generator,
    )
    clone.truths = planner.truths.view_by_cells(destination_cells)
    # A shallow copy of the base planner's evaluator rebound to the slice:
    # preserves any evaluator subclass/state without assuming its
    # constructor signature.
    evaluator = copy.copy(planner.evaluator)
    evaluator.truths = clone.truths
    clone.evaluator = evaluator
    return clone


def build_tenant_planner(template: CrowdPlanner, config=None) -> CrowdPlanner:
    """A workspace planner sharing ``template``'s substrate with its own state.

    Road network, catalogue, sources, task generator, crowd backend and —
    critically — the *fitted* familiarity model are shared read-only; the
    truth store, evaluator, worker pool (answer/reward histories) and
    statistics are fresh, so the tenant starts from an empty truth database
    but identical serving behaviour.  The familiarity model is **never
    refitted** here: a refit would read the live worker-pool histories at
    whatever moment the tenant happens to be built (parent at registration,
    worker at lazy construction), and the two moments would disagree.
    Sharing the frozen fit keeps every copy of a tenant's planner — parent
    and every pool worker — behaviourally identical, which the per-tenant
    serving contract rests on.
    """
    if config is None:
        config = template.config
    return CrowdPlanner(
        network=template.network,
        catalog=template.catalog,
        calibrator=template.calibrator,
        sources=template.sources,
        worker_pool=copy.deepcopy(template.worker_pool),
        crowd_backend=template.crowd_backend,
        config=config,
        familiarity=template.familiarity,
        task_generator=template.task_generator,
    )


def execute_shard_job(planner: CrowdPlanner, job: ShardJob) -> ShardOutcome:
    """Execute ``job`` on a fresh clone of ``planner``; the base planner's
    truth store is read, never written.

    A sub-shard's hand-off delta (``job.adopt``) lands in the clone's
    copy-on-write overlay *before* the truth cursor is taken, so adopted
    upstream truths are visible to the slice (with ids newer than every base
    truth, matching sequential recording order) but are never re-reported as
    this shard's own writes.
    """
    clone = build_shard_clone(planner, job.destination_cells)
    if job.adopt:
        clone.truths.adopt_all(job.adopt)
    before = len(clone.truths)
    results = clone.recommend_batch(
        job.queries, share_candidate_generation=job.share_candidate_generation
    )
    return ShardOutcome(
        shard_id=job.shard_id,
        indices=job.indices,
        results=results,
        statistics_delta=clone.statistics.as_dict(),
        new_truths=clone.truths.all()[before:],
        worker_pid=os.getpid(),
        tenant=job.tenant,
    )


def tag_outcome_truths(outcome: ShardOutcome) -> List[Tuple[int, VerifiedTruth]]:
    """Pair each newly recorded truth with the submission index that wrote it.

    Every result other than a truth-reuse hit recorded exactly one truth in
    its shard, in shard execution order, so walking results and truths in
    lockstep recovers the (global submission index, truth) pairing the merge
    and the hand-off chain both rely on.
    """
    tagged: List[Tuple[int, VerifiedTruth]] = []
    truth_iter = iter(outcome.new_truths)
    for local, original in enumerate(outcome.indices):
        if outcome.results[local].method != "truth_reuse":
            try:
                tagged.append((original, next(truth_iter)))
            except StopIteration:  # pragma: no cover - defensive
                raise ServingError(
                    "shard recorded fewer truths than its results imply"
                ) from None
    if next(truth_iter, None) is not None:  # pragma: no cover - defensive
        raise ServingError("shard recorded more truths than its results imply")
    return tagged


def merge_shard_outcomes(
    planner: CrowdPlanner,
    num_queries: int,
    outcomes: List[ShardOutcome],
) -> List[RecommendationResult]:
    """Reassemble submission order and replay shard writes onto the parent.

    Truths are paired back to their submission indices
    (:func:`tag_outcome_truths`), sorted, and re-recorded globally in
    submission order — the order the sequential path would have used.  Crowd
    task results replay worker answer histories and rewards (with task ids
    re-issued from the parent's sequence), and statistics counters are
    summed.
    """
    ordered: List[Optional[RecommendationResult]] = [None] * num_queries
    tagged_truths: List[Tuple[int, VerifiedTruth]] = []
    for outcome in outcomes:
        tagged_truths.extend(tag_outcome_truths(outcome))
        for local, original in enumerate(outcome.indices):
            if ordered[original] is not None:
                raise ServingError(f"query {original} served by more than one shard")
            ordered[original] = outcome.results[local]
        planner.statistics.merge(outcome.statistics_delta)
    tagged_truths.sort(key=lambda item: item[0])
    planner.truths.absorb([truth for _, truth in tagged_truths])
    for result in ordered:
        if result is None:  # pragma: no cover - defensive
            raise ServingError("a query was not covered by any shard")
        if result.task_result is not None:
            planner.replay_task_result(result.task_result)
    return ordered  # type: ignore[return-value]


# ------------------------------------------------- intra-component pipeline
#: Provisional hand-off truth ids live in their own high region so they rank
#: strictly newer than every parent-issued id a worker clone can see.  The
#: region advances past the current watermark per window; batches within a
#: window take disjoint ``HANDOFF_BATCH_BITS`` stripes inside it.
HANDOFF_REGION_BITS = 40
HANDOFF_BATCH_BITS = 30


def handoff_id_base(batch_offset: int = 0) -> int:
    """Base for the provisional truth ids of one batch's hand-off chain.

    Retagged hand-off truths carry ``base + submission_index``: unique,
    ordered exactly as a sequential run would have issued them relative to
    each other, and — because the region sits strictly above the current
    :func:`~repro.core.truth.truth_id_watermark` — newer than every truth a
    clone's base view can contain.  The per-batch stripe keeps later
    batches' bases above any ids the parent issues while earlier batches of
    the same window merge (a window never issues anywhere near
    ``2**HANDOFF_BATCH_BITS`` ids).  The provisional ids never reach the
    parent store: the merge re-issues real ids in submission order, exactly
    as for unchained shards.
    """
    watermark = truth_id_watermark()
    region = ((watermark >> HANDOFF_REGION_BITS) + 1) << HANDOFF_REGION_BITS
    return region + (batch_offset << HANDOFF_BATCH_BITS)


def _strongly_connected(succ: Sequence[Sequence[int]]) -> List[int]:
    """Tarjan's SCC (iterative) — returns a component id per node."""
    count = len(succ)
    index = [-1] * count
    low = [0] * count
    on_stack = [False] * count
    comp = [-1] * count
    stack: List[int] = []
    counter = 0
    components = 0
    for root in range(count):
        if index[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child = work[-1]
            if child == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            for position in range(child, len(succ[node])):
                nxt = succ[node][position]
                if index[nxt] == -1:
                    work[-1] = (node, position + 1)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if on_stack[nxt]:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    comp[member] = components
                    if member == node:
                        break
                components += 1
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return comp


def _stage_dataflow(
    planner: CrowdPlanner,
    shard: QueryShard,
    queries: Sequence[RouteQuery],
    max_size: int,
    reach: int,
) -> List[Tuple[List[int], List[int], List[int]]]:
    """Slice one oversized shard into an ordered dataflow of sub-shards.

    The shard's od-cell groups form a *visibility graph*: a truth recorded
    by a query of group ``g`` is observable by a query of group ``h`` only
    when every od-cell axis differs by at most ``reach`` (the same test that
    linked them into one component).  Each linked pair gets directed edges
    following submission-index order (both directions when their index
    ranges interleave), strongly connected pieces collapse into atomic
    *units* — so the condensed graph is a DAG whose every edge points from a
    unit wholly earlier in submission order to one wholly later — and units
    larger than ``max_size`` are sliced into contiguous submission-index
    chunks.  Unlinked units stay parallel branches of the DAG.

    Returns nodes ``(global_indices, predecessor_locals, handoff_locals)``
    in a deterministic topological emission order; ``locals`` are 0-based
    positions within that order.  ``handoff_locals`` (every slice of every
    direct-predecessor unit, plus the unit's own earlier slices) is exactly
    the set whose truths can be visible to the node: a transitive-but-not-
    direct predecessor shares no linked group pair, so all its truths are
    out of radius of every query of this node.
    """
    local_queries = [queries[index] for index in shard.indices]
    groups = planner.od_cell_groups(local_queries)
    keys = list(groups)
    members = [sorted(shard.indices[local] for local in groups[key]) for key in keys]
    count = len(keys)

    succ: List[List[int]] = [[] for _ in range(count)]
    for g in range(count):
        key_g = keys[g]
        for h in range(g + 1, count):
            key_h = keys[h]
            if any(abs(key_g[axis] - key_h[axis]) > reach for axis in range(4)):
                continue
            if members[g][-1] < members[h][0]:
                succ[g].append(h)
            elif members[h][-1] < members[g][0]:
                succ[h].append(g)
            else:
                succ[g].append(h)
                succ[h].append(g)

    comp = _strongly_connected(succ)
    units: Dict[int, List[int]] = {}
    for group, unit in enumerate(comp):
        units.setdefault(unit, []).append(group)
    unit_indices = {
        unit: sorted(index for group in group_list for index in members[group])
        for unit, group_list in units.items()
    }
    pred_units: Dict[int, Set[int]] = {unit: set() for unit in units}
    succ_units: Dict[int, Set[int]] = {unit: set() for unit in units}
    for g in range(count):
        for h in succ[g]:
            if comp[g] != comp[h]:
                succ_units[comp[g]].add(comp[h])
                pred_units[comp[h]].add(comp[g])

    # Kahn's topological order, earliest-query-first for determinism.
    degree = {unit: len(preds) for unit, preds in pred_units.items()}
    heap = [
        (unit_indices[unit][0], unit) for unit, deg in degree.items() if deg == 0
    ]
    heapq.heapify(heap)
    nodes: List[Tuple[List[int], List[int], List[int]]] = []
    unit_slices: Dict[int, List[int]] = {}
    emitted = 0
    while heap:
        _, unit = heapq.heappop(heap)
        emitted += 1
        indices = unit_indices[unit]
        chunks = -(-len(indices) // max_size)
        size = -(-len(indices) // chunks)
        direct = sorted(pred_units[unit], key=lambda p: unit_slices[p][0])
        pred_last = [unit_slices[p][-1] for p in direct]
        handoff_base = sorted(s for p in direct for s in unit_slices[p])
        slices: List[int] = []
        for chunk_index in range(chunks):
            chunk = indices[chunk_index * size : (chunk_index + 1) * size]
            if not chunk:
                break
            position = len(nodes)
            preds = list(pred_last) if not slices else [slices[-1]]
            nodes.append((chunk, preds, handoff_base + slices))
            slices.append(position)
        unit_slices[unit] = slices
        for downstream in sorted(succ_units[unit]):
            degree[downstream] -= 1
            if degree[downstream] == 0:
                heapq.heappush(heap, (unit_indices[downstream][0], downstream))
    if emitted != len(units):  # pragma: no cover - DAG guard
        raise ServingError("sub-shard unit graph is not acyclic")
    return nodes


def split_oversized(
    planner: CrowdPlanner,
    plan: ShardPlan,
    queries: Sequence[RouteQuery],
    max_fraction: float,
) -> ShardPlan:
    """Split every shard above ``max_fraction`` of the batch into sub-shards.

    Ordinary component shards stay untouched (the plan's mutual-isolation
    guarantee already covers them); each oversized shard is re-staged as the
    dataflow of :func:`_stage_dataflow`, its sub-shards emitted in
    topological order.  Shard ids are renumbered densely in emission order,
    so ascending shard id remains a valid execution order for the whole
    plan — which is exactly the order the inline/degraded paths use.
    """
    if max_fraction >= 1.0 or not plan.shards or plan.num_queries == 0:
        return plan
    max_size = max(1, int(max_fraction * plan.num_queries))
    if all(len(shard) <= max_size for shard in plan.shards):
        return plan
    rebuilt: List[QueryShard] = []
    for shard in sorted(plan.shards, key=lambda item: item.shard_id):
        if len(shard) <= max_size:
            rebuilt.append(dataclasses.replace(shard, shard_id=len(rebuilt)))
            continue
        first = len(rebuilt)
        for indices, pred_locals, handoff_locals in _stage_dataflow(
            planner, shard, queries, max_size, plan.cell_reach
        ):
            rebuilt.append(
                QueryShard(
                    shard_id=len(rebuilt),
                    indices=tuple(indices),
                    # The parent's reach-expanded closure stays sound for
                    # every slice: the destination-keyed view only widens the
                    # candidate set, and radius filtering prunes it exactly
                    # as the sequential store would.
                    destination_cells=shard.destination_cells,
                    components=1,
                    predecessors=tuple(first + p for p in pred_locals),
                    handoff_from=tuple(first + h for h in handoff_locals),
                )
            )
    return dataclasses.replace(plan, shards=tuple(rebuilt))


class ChainState:
    """Parent-side bookkeeping of one batch's sub-shard hand-off chain.

    Tracks which sub-shards completed, retags every producer's new truths
    with provisional ids (``id_base + submission_index`` — see
    :func:`handoff_id_base`), and builds each downstream job's adopt payload
    — encoded with ``encoder`` (the columnar codec on the pooled wire) or
    shipped as a plain list in-process.  Payloads are memoised per
    ``handoff_from`` signature, so a resubmitted job rebuilds byte-identical
    state.
    """

    def __init__(
        self,
        jobs: Sequence[ShardJob],
        id_base: int,
        encoder: Optional[Callable[[List[VerifiedTruth]], object]] = None,
    ):
        self.id_base = id_base
        self._encoder = encoder
        self._producers: Set[int] = {
            shard_id for job in jobs for shard_id in job.handoff_from
        }
        self._truths: Dict[int, List[VerifiedTruth]] = {}
        self._completed: Set[int] = set()
        self._payloads: Dict[Tuple[int, ...], object] = {}

    @property
    def active(self) -> bool:
        """Whether any job of this batch waits on another's truths."""
        return bool(self._producers)

    def record(self, outcome: ShardOutcome) -> None:
        """Note a completed sub-shard; retain its truths if consumed later."""
        self._completed.add(outcome.shard_id)
        if outcome.shard_id in self._producers and outcome.shard_id not in self._truths:
            self._truths[outcome.shard_id] = [
                dataclasses.replace(truth, truth_id=self.id_base + original)
                for original, truth in tag_outcome_truths(outcome)
            ]

    def ready(self, job: ShardJob) -> bool:
        """Whether every predecessor sub-shard has completed."""
        return all(pred in self._completed for pred in job.predecessors)

    def payload(self, job: ShardJob) -> Optional[object]:
        """The adopt payload for ``job`` (``None`` when it has no hand-off)."""
        if not job.handoff_from:
            return None
        key = tuple(job.handoff_from)
        cached = self._payloads.get(key)
        if cached is not None:
            return cached
        missing = [sid for sid in key if sid not in self._completed]
        if missing:  # pragma: no cover - dispatch guard
            raise ServingError(
                f"hand-off truths of sub-shards {missing} are not available yet"
            )
        truths = sorted(
            (truth for sid in key for truth in self._truths.get(sid, ())),
            key=lambda truth: truth.truth_id,
        )
        payload: object = truths
        if self._encoder is not None and truths:
            payload = self._encoder(truths)
        self._payloads[key] = payload
        return payload


def execute_jobs_inline(
    planner: CrowdPlanner,
    jobs: Sequence[ShardJob],
    chain: Optional[ChainState] = None,
) -> List[ShardOutcome]:
    """Execute jobs in-process in shard-id order, driving the hand-off chain.

    Shard ids are a topological order of the chain DAG (``split_oversized``
    renumbers them that way), so ascending execution satisfies every
    predecessor before its consumers — this is the fork-less fallback and
    the degraded tail of the pooled dispatchers, and it reproduces the
    sequential prefix exactly.
    """
    outcomes: List[ShardOutcome] = []
    for job in sorted(jobs, key=lambda item: item.shard_id):
        if chain is not None:
            if not chain.ready(job):  # pragma: no cover - topo-order guard
                raise ServingError(
                    f"sub-shard {job.shard_id} is not executable in shard-id order"
                )
            job.adopt = chain.payload(job)
        outcome = execute_shard_job(planner, job)
        outcomes.append(outcome)
        if chain is not None:
            chain.record(outcome)
    return outcomes
