"""Shard execution and merge primitives shared by every pooled path.

A *shard job* is the unit of work the serving layer hands to a worker — a
slice of a batch (whole interaction-closed components, see
:meth:`~repro.core.planner.CrowdPlanner.shard_plan`) plus the destination
cells whose truth slice the shard may observe.  The primitives here are used
identically by the persistent pool workers (:mod:`repro.serving.service`),
the per-batch forked pool behind the deprecated engine shim, and the inline
fallback:

* :func:`build_shard_clone` — a planner over a copy-on-write
  :meth:`~repro.core.truth.TruthDatabase.view_by_cells` slice of the base
  planner's truth store, with isolated evaluator/worker-pool/statistics;
* :func:`execute_shard_job` — run one job on a clone, collecting results,
  the statistics delta and the newly recorded truths;
* :func:`merge_shard_outcomes` — replay every shard's writes onto the parent
  planner in submission order, reproducing the exact state a sequential run
  would have left.

Everything that crosses a process boundary (:class:`ShardJob` down,
:class:`ShardOutcome` up) is plain picklable data; planner substrate never
travels — workers inherit it through ``fork``.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.planner import CrowdPlanner, RecommendationResult
from ..core.truth import VerifiedTruth
from ..exceptions import ServingError
from ..routing.base import RouteQuery


@dataclass
class ShardJob:
    """One shard of one batch, ready to be executed anywhere."""

    shard_id: int
    indices: Tuple[int, ...]
    destination_cells: FrozenSet[Tuple[int, int]]
    queries: List[RouteQuery]
    share_candidate_generation: bool = True


@dataclass
class ShardOutcome:
    """Everything a shard execution produced, in shard submission order."""

    shard_id: int
    indices: Tuple[int, ...]
    results: List[RecommendationResult]
    statistics_delta: Dict[str, int]
    new_truths: List[VerifiedTruth]
    worker_pid: int


def build_shard_clone(planner: CrowdPlanner, destination_cells) -> CrowdPlanner:
    """A planner over the shard's truth slice and a private worker pool.

    Road network, catalogue, sources, task generator, crowd backend and the
    fitted familiarity model are shared (read-only during a batch); the truth
    store (a copy-on-write destination-cell view), evaluator, worker pool,
    rewards and statistics are isolated so a shard's writes never leak into
    another shard or the base planner.
    """
    clone = CrowdPlanner(
        network=planner.network,
        catalog=planner.catalog,
        calibrator=planner.calibrator,
        sources=planner.sources,
        worker_pool=copy.deepcopy(planner.worker_pool),
        crowd_backend=planner.crowd_backend,
        config=planner.config,
        familiarity=planner.familiarity,
        task_generator=planner.task_generator,
    )
    clone.truths = planner.truths.view_by_cells(destination_cells)
    # A shallow copy of the base planner's evaluator rebound to the slice:
    # preserves any evaluator subclass/state without assuming its
    # constructor signature.
    evaluator = copy.copy(planner.evaluator)
    evaluator.truths = clone.truths
    clone.evaluator = evaluator
    return clone


def execute_shard_job(planner: CrowdPlanner, job: ShardJob) -> ShardOutcome:
    """Execute ``job`` on a fresh clone of ``planner``; the base planner's
    truth store is read, never written."""
    clone = build_shard_clone(planner, job.destination_cells)
    before = len(clone.truths)
    results = clone.recommend_batch(
        job.queries, share_candidate_generation=job.share_candidate_generation
    )
    return ShardOutcome(
        shard_id=job.shard_id,
        indices=job.indices,
        results=results,
        statistics_delta=clone.statistics.as_dict(),
        new_truths=clone.truths.all()[before:],
        worker_pid=os.getpid(),
    )


def merge_shard_outcomes(
    planner: CrowdPlanner,
    num_queries: int,
    outcomes: List[ShardOutcome],
) -> List[RecommendationResult]:
    """Reassemble submission order and replay shard writes onto the parent.

    Every result other than a truth-reuse hit recorded exactly one truth in
    its shard, in shard execution order; pairing them back up by position
    lets the merge re-record the truths globally in submission order — the
    order the sequential path would have used.  Crowd task results replay
    worker answer histories and rewards (with task ids re-issued from the
    parent's sequence), and statistics counters are summed.
    """
    ordered: List[Optional[RecommendationResult]] = [None] * num_queries
    tagged_truths: List[Tuple[int, VerifiedTruth]] = []
    for outcome in outcomes:
        truth_iter = iter(outcome.new_truths)
        for local, original in enumerate(outcome.indices):
            result = outcome.results[local]
            if ordered[original] is not None:
                raise ServingError(f"query {original} served by more than one shard")
            ordered[original] = result
            if result.method != "truth_reuse":
                try:
                    tagged_truths.append((original, next(truth_iter)))
                except StopIteration:  # pragma: no cover - defensive
                    raise ServingError(
                        "shard recorded fewer truths than its results imply"
                    ) from None
        if next(truth_iter, None) is not None:  # pragma: no cover - defensive
            raise ServingError("shard recorded more truths than its results imply")
        planner.statistics.merge(outcome.statistics_delta)
    tagged_truths.sort(key=lambda item: item[0])
    planner.truths.absorb([truth for _, truth in tagged_truths])
    for result in ordered:
        if result is None:  # pragma: no cover - defensive
            raise ServingError("a query was not covered by any shard")
        if result.task_result is not None:
            planner.replay_task_result(result.task_result)
    return ordered  # type: ignore[return-value]
