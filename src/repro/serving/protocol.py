"""Request/response envelopes and the backend protocol of the serving layer.

The :class:`~repro.serving.service.RecommendationService` speaks one unified
vocabulary regardless of how batches are executed:

* :class:`RecommendRequest` wraps a :class:`~repro.routing.base.RouteQuery`
  with a service-issued request id;
* :class:`RecommendResponse` wraps the planner's
  :class:`~repro.core.planner.RecommendationResult` with
  :class:`ResultProvenance` — which backend and batch produced it, which
  shard and worker process served it, whether it was a warm truth-store hit,
  and the batch's planning/execution/merge timings;
* :class:`Ticket` is the handle ``submit`` returns and ``results`` consumes;
* :class:`ServingBackend` is the pluggable execution strategy — the service
  owns ordering, envelopes and lifecycle, a backend owns *how* one batch of
  queries becomes ordered results (and parent planner state).

The module also hosts :func:`recommendation_fingerprint`, the canonical
comparable form of a result used everywhere the serving layer's
bit-identical-to-sequential contract is asserted.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..core.evaluation import EvaluationOutcome
from ..core.planner import CrowdPlanner, RecommendationResult, ShardPlan
from ..core.task import TaskResult
from ..routing.base import CandidateRoute, RouteQuery


@dataclass(frozen=True)
class RecommendRequest:
    """One route-recommendation request as the service tracks it."""

    request_id: int
    query: RouteQuery

    @property
    def origin(self) -> int:
        return self.query.origin

    @property
    def destination(self) -> int:
        return self.query.destination


def wrap_requests(
    queries: Iterable[Union[RouteQuery, RecommendRequest]], start_id: int
) -> List[RecommendRequest]:
    """Envelope raw queries (ids issued from ``start_id``); pre-built
    envelopes are re-issued under the service's id sequence so ids stay
    unique per service."""
    requests = []
    for offset, query in enumerate(queries):
        if isinstance(query, RecommendRequest):
            query = query.query
        requests.append(RecommendRequest(request_id=start_id + offset, query=query))
    return requests


@dataclass(frozen=True)
class BatchTimings:
    """Wall-clock breakdown of the batch a response belonged to."""

    plan_s: float
    execute_s: float
    merge_s: float

    @property
    def total_s(self) -> float:
        return self.plan_s + self.execute_s + self.merge_s


@dataclass(frozen=True)
class ResultProvenance:
    """Where and how a response was produced.

    ``shard_id``/``worker_pid`` identify the shard and OS process that served
    the request (``shard_id`` is ``None`` for the inline backend, which does
    not shard; ``worker_pid`` is the serving process — the parent's own pid
    when no pool worker was involved).  ``warm_pool`` records whether the
    batch ran on an already-forked pool (the amortisation the persistent
    backend exists for), and ``truth_reused`` whether the answer came
    straight from the verified-truth store.
    """

    backend: str
    batch_id: int
    batch_size: int
    shard_id: Optional[int]
    worker_pid: Optional[int]
    truth_reused: bool
    warm_pool: bool
    timings: BatchTimings


@dataclass(frozen=True)
class RecommendResponse:
    """One answered request: the planner's result plus provenance."""

    request: RecommendRequest
    result: RecommendationResult
    provenance: ResultProvenance

    @property
    def query(self) -> RouteQuery:
        return self.request.query

    @property
    def route(self) -> CandidateRoute:
        return self.result.route

    @property
    def method(self) -> str:
        return self.result.method

    @property
    def confidence(self) -> float:
        return self.result.confidence


@dataclass(frozen=True)
class Ticket:
    """Handle for a submitted batch; redeem once with ``Service.results``."""

    ticket_id: int
    size: int


@dataclass
class BatchExecution:
    """What a backend hands back for one executed batch.

    ``results`` are in submission order; ``origins`` pairs each result with
    its ``(shard_id, worker_pid)``; the parent planner's post-batch state has
    already been brought up to date (that is part of the backend contract).
    """

    results: List[RecommendationResult]
    origins: List[Tuple[Optional[int], Optional[int]]]
    plan_s: float = 0.0
    execute_s: float = 0.0
    merge_s: float = 0.0
    warm_pool: bool = False


class ServingBackend(abc.ABC):
    """Execution strategy of the recommendation service.

    A backend is bound to exactly one planner (by
    :meth:`RecommendationService.__init__` via :meth:`bind`) and must keep
    the service contract: for any batch sequence, results and post-batch
    planner state are identical to the planner answering the same queries
    sequentially in submission order.
    """

    #: Name recorded in every response's provenance.
    name: str = "backend"

    def __init__(self) -> None:
        self.planner: Optional[CrowdPlanner] = None

    def bind(self, planner: CrowdPlanner) -> None:
        """Attach the backend to the planner it will serve (idempotent)."""
        self.planner = planner

    @abc.abstractmethod
    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> BatchExecution:
        """Answer one batch in submission order and update the parent planner."""

    def worker_pids(self) -> List[int]:
        """PIDs of live pool workers (empty for in-process backends)."""
        return []

    def close(self) -> None:
        """Release any long-lived resources (idempotent)."""


# --------------------------------------------------------------- comparison
def _route_fingerprint(route: Optional[CandidateRoute]):
    if route is None:
        return None
    return (route.path, route.source, route.support, tuple(sorted(route.metadata.items())))


def _evaluation_fingerprint(evaluation: Optional[EvaluationOutcome]):
    if evaluation is None:
        return None
    return (
        evaluation.decision.value,
        _route_fingerprint(evaluation.best_route),
        tuple(sorted(evaluation.confidences.items())),
        evaluation.mean_pairwise_similarity,
    )


def _task_result_fingerprint(task_result: Optional[TaskResult]):
    if task_result is None:
        return None
    return (
        task_result.winning_route_index,
        task_result.confidence,
        task_result.stopped_early,
        tuple(sorted(task_result.votes.items())),
        tuple(
            (
                response.worker_id,
                response.chosen_route_index,
                response.total_response_time_s,
                tuple(
                    (answer.worker_id, answer.landmark_id, answer.says_yes, answer.response_time_s)
                    for answer in response.answers
                ),
            )
            for response in task_result.responses
        ),
    )


def recommendation_fingerprint(result: RecommendationResult):
    """Canonical, comparable form of a recommendation result.

    Captures every externally observable part of the answer — query, route,
    resolution method, confidence, candidate set, evaluation outcome and the
    full crowd task result down to individual answers and response times —
    while excluding process-local serial numbers (task ids), which are the
    only field where a sharded run may differ from the sequential oracle.
    """
    query = result.query
    return (
        (query.origin, query.destination, query.departure_time_s, query.max_response_time_s),
        _route_fingerprint(result.route),
        result.method,
        result.confidence,
        tuple(_route_fingerprint(candidate) for candidate in result.candidates),
        _evaluation_fingerprint(result.evaluation),
        _task_result_fingerprint(result.task_result),
    )


def response_fingerprint(response: RecommendResponse):
    """Fingerprint of the result inside a service response envelope."""
    return recommendation_fingerprint(response.result)
