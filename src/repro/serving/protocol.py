"""Request/response envelopes and the backend protocol of the serving layer.

The :class:`~repro.serving.service.RecommendationService` speaks one unified
vocabulary regardless of how batches are executed:

* :class:`RecommendRequest` wraps a :class:`~repro.routing.base.RouteQuery`
  with a service-issued request id;
* :class:`RecommendResponse` wraps the planner's
  :class:`~repro.core.planner.RecommendationResult` with
  :class:`ResultProvenance` — which backend and batch produced it, which
  shard and worker process served it, whether it was a warm truth-store hit,
  and the batch's planning/execution/merge timings;
* :class:`Ticket` is the handle ``submit`` returns and ``results`` consumes;
* :class:`ServingBackend` is the pluggable execution strategy — the service
  owns ordering, envelopes and lifecycle, a backend owns *how* one batch of
  queries becomes ordered results (and parent planner state);
* :class:`WindowBatch` + :meth:`ServingBackend.execute_window` are the
  cross-batch pipelining surface: the service hands the backend a rolling
  window of consecutive pending batches, the backend returns the merged
  prefix of their executions (merges strictly in submission order, each
  stamped with its ``truth_span`` for per-batch journaling).  The default
  implementation is the per-batch barrier; the pooled backend overrides it
  with the DAG-walking dispatcher in :mod:`repro.serving.service`, whose
  shard-level dependency analysis lives in :mod:`repro.serving.pipeline`.

The module also hosts the serving layer's two comparison/wire primitives:

* :func:`recommendation_fingerprint`, the canonical comparable form of a
  result used everywhere the bit-identical-to-sequential contract is
  asserted;
* the columnar **truth wire codec** — :func:`encode_truth_delta` /
  :class:`TruthDeltaBlock` — which ships parent→worker truth deltas as flat
  index arrays (endpoints as road-network node indices, paths as one
  concatenated node-index array with CSR offsets, enum-like string fields
  dictionary-encoded) instead of pickled
  :class:`~repro.core.truth.VerifiedTruth` object trees.  The decode is
  exact: every reconstructed truth compares equal to the original.
"""

from __future__ import annotations

import abc
import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.evaluation import EvaluationOutcome
from ..core.planner import CrowdPlanner, RecommendationResult, ShardPlan
from ..core.task import TaskResult
from ..core.truth import VerifiedTruth
from ..roadnet.graph import RoadNetwork
from ..routing.base import CandidateRoute, RouteQuery
from ..spatial import Point


@dataclass(frozen=True)
class RecommendRequest:
    """One route-recommendation request as the service tracks it."""

    request_id: int
    query: RouteQuery

    @property
    def origin(self) -> int:
        return self.query.origin

    @property
    def destination(self) -> int:
        return self.query.destination


def wrap_requests(
    queries: Iterable[Union[RouteQuery, RecommendRequest]], start_id: int
) -> List[RecommendRequest]:
    """Envelope raw queries (ids issued from ``start_id``); pre-built
    envelopes are re-issued under the service's id sequence so ids stay
    unique per service."""
    requests = []
    for offset, query in enumerate(queries):
        if isinstance(query, RecommendRequest):
            query = query.query
        requests.append(RecommendRequest(request_id=start_id + offset, query=query))
    return requests


@dataclass(frozen=True)
class BatchTimings:
    """Wall-clock breakdown of the batch a response belonged to."""

    plan_s: float
    execute_s: float
    merge_s: float

    @property
    def total_s(self) -> float:
        return self.plan_s + self.execute_s + self.merge_s


@dataclass(frozen=True)
class ResultProvenance:
    """Where and how a response was produced.

    ``shard_id``/``worker_pid`` identify the shard and OS process that served
    the request (``shard_id`` is ``None`` for the inline backend, which does
    not shard; ``worker_pid`` is the serving process — the parent's own pid
    when no pool worker was involved).  ``warm_pool`` records whether the
    batch ran on an already-forked pool (the amortisation the persistent
    backend exists for), and ``truth_reused`` whether the answer came
    straight from the verified-truth store.

    ``resubmitted`` marks a result whose shard was re-executed after the
    supervisor declared its original worker dead mid-batch (``worker_pid``
    is the process that actually produced the result), and
    ``respawn_count`` is how many workers the supervisor re-forked during
    this response's batch — both zero/false on a fault-free run.
    """

    backend: str
    batch_id: int
    batch_size: int
    shard_id: Optional[int]
    worker_pid: Optional[int]
    truth_reused: bool
    warm_pool: bool
    timings: BatchTimings
    resubmitted: bool = False
    respawn_count: int = 0


@dataclass(frozen=True)
class RecommendResponse:
    """One answered request: the planner's result plus provenance."""

    request: RecommendRequest
    result: RecommendationResult
    provenance: ResultProvenance

    @property
    def query(self) -> RouteQuery:
        return self.request.query

    @property
    def route(self) -> CandidateRoute:
        return self.result.route

    @property
    def method(self) -> str:
        return self.result.method

    @property
    def confidence(self) -> float:
        return self.result.confidence


@dataclass(frozen=True)
class Ticket:
    """Handle for a submitted batch; redeem once with ``Service.results``."""

    ticket_id: int
    size: int


@dataclass
class BatchExecution:
    """What a backend hands back for one executed batch.

    ``results`` are in submission order; ``origins`` pairs each result with
    its ``(shard_id, worker_pid)``; the parent planner's post-batch state has
    already been brought up to date (that is part of the backend contract).
    """

    results: List[RecommendationResult]
    origins: List[Tuple[Optional[int], Optional[int]]]
    plan_s: float = 0.0
    execute_s: float = 0.0
    merge_s: float = 0.0
    warm_pool: bool = False
    #: Per-result flag: the result's shard was resubmitted after its worker
    #: was declared dead mid-batch (``None`` ≡ all ``False``).
    resubmitted: Optional[List[bool]] = None
    #: Workers re-forked by the supervisor while this batch executed.
    respawn_count: int = 0
    #: ``(before, after)`` parent truth cursors around this batch's merge —
    #: recorded by :meth:`ServingBackend.execute_window` so the service can
    #: journal each batch's own truth delta even when several batches merged
    #: inside one window call.  ``None`` on the plain ``execute_batch`` path,
    #: where the caller brackets the cursors itself.
    truth_span: Optional[Tuple[int, int]] = None


@dataclass
class WindowBatch:
    """One submitted batch inside a pipeline window, backend-ready.

    The service hands the backend a *window* — up to
    ``ServiceConfig.pipeline_window`` consecutive pending batches — as a list
    of these; the backend executes them with submission-order merge semantics
    (see :meth:`ServingBackend.execute_window`).
    """

    queries: List[RouteQuery]
    share_candidate_generation: bool = True


class ServingBackend(abc.ABC):
    """Execution strategy of the recommendation service.

    A backend is bound to exactly one planner (by
    :meth:`RecommendationService.__init__` via :meth:`bind`) and must keep
    the service contract: for any batch sequence, results and post-batch
    planner state are identical to the planner answering the same queries
    sequentially in submission order.
    """

    #: Name recorded in every response's provenance.
    name: str = "backend"

    def __init__(self) -> None:
        self.planner: Optional[CrowdPlanner] = None

    def bind(self, planner: CrowdPlanner) -> None:
        """Attach the backend to the planner it will serve (idempotent)."""
        self.planner = planner

    @abc.abstractmethod
    def execute_batch(
        self,
        queries: Sequence[RouteQuery],
        share_candidate_generation: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> BatchExecution:
        """Answer one batch in submission order and update the parent planner."""

    def execute_window(self, batches: Sequence[WindowBatch]) -> List[BatchExecution]:
        """Execute a window of consecutive batches; return the merged prefix.

        The default implementation is the barrier scheduler: each batch runs
        through :meth:`execute_batch` in submission order, one at a time —
        byte-for-byte the behaviour of calling the service without a window.
        Backends that can overlap batches (the pooled backend's DAG
        dispatcher) override this, but every override must keep the window
        contract:

        * batches **merge strictly in submission order** — the parent
          planner's state after the call is exactly the sequential prefix;
        * each returned execution carries ``truth_span``, the parent truth
          cursors bracketing that batch's merge, so the caller can journal
          per-batch deltas;
        * on a mid-window failure the successfully merged *prefix* is
          returned (the failing batch and everything after stay unexecuted —
          the caller keeps them pending and the failure surfaces
          deterministically when the failing batch is retried at the head of
          a later window); only a failure of the **first** batch raises.
        """
        executions: List[BatchExecution] = []
        for batch in batches:
            before = self.planner.truth_cursor() if self.planner is not None else 0
            try:
                execution = self.execute_batch(
                    batch.queries,
                    share_candidate_generation=batch.share_candidate_generation,
                )
            except Exception:
                if executions:
                    break
                raise
            after = self.planner.truth_cursor() if self.planner is not None else 0
            execution.truth_span = (before, after)
            executions.append(execution)
        return executions

    def worker_pids(self) -> List[int]:
        """PIDs of live pool workers (empty for in-process backends)."""
        return []

    def supervision_stats(self) -> Dict[str, int]:
        """Aggregate supervision counters (all zero for in-process backends,
        which have no workers to lose)."""
        return {
            "respawns": 0,
            "resubmitted_shards": 0,
            "hung_workers_killed": 0,
            "degraded_batches": 0,
        }

    def pipeline_stats(self) -> Dict[str, int]:
        """Cross-batch pipelining counters (all zero for backends that only
        run the default barrier :meth:`execute_window`)."""
        return {
            "windows": 0,
            "overlapped_dispatches": 0,
            "independent_shards": 0,
            "cross_batch_edges": 0,
            "serialized_batches": 0,
        }

    def sharding_stats(self) -> Dict[str, Any]:
        """Skew / hotspot-splitting diagnostics (neutral for backends that
        never shard): the last batch's largest-shard fraction before and
        after ``split_oversized``, its sub-shard chain depth, and lifetime
        aggregates."""
        return {
            "largest_shard_fraction_before": 0.0,
            "largest_shard_fraction_after": 0.0,
            "chain_depth": 0,
            "max_chain_depth": 0,
            "sub_shards_total": 0,
        }

    def resilience_stats(self) -> Dict[str, int]:
        """Hedged-execution counters (all zero for in-process backends,
        which have no stragglers to hedge against)."""
        return {
            "hedges_issued": 0,
            "hedges_won": 0,
            "hedges_wasted": 0,
            "stragglers_killed": 0,
        }

    def close(self) -> None:
        """Release any long-lived resources (idempotent)."""


# --------------------------------------------------------------- comparison
def _route_fingerprint(route: Optional[CandidateRoute]):
    if route is None:
        return None
    return (route.path, route.source, route.support, tuple(sorted(route.metadata.items())))


def _evaluation_fingerprint(evaluation: Optional[EvaluationOutcome]):
    if evaluation is None:
        return None
    return (
        evaluation.decision.value,
        _route_fingerprint(evaluation.best_route),
        tuple(sorted(evaluation.confidences.items())),
        evaluation.mean_pairwise_similarity,
    )


def _task_result_fingerprint(task_result: Optional[TaskResult]):
    if task_result is None:
        return None
    return (
        task_result.winning_route_index,
        task_result.confidence,
        task_result.stopped_early,
        tuple(sorted(task_result.votes.items())),
        tuple(
            (
                response.worker_id,
                response.chosen_route_index,
                response.total_response_time_s,
                tuple(
                    (answer.worker_id, answer.landmark_id, answer.says_yes, answer.response_time_s)
                    for answer in response.answers
                ),
            )
            for response in task_result.responses
        ),
    )


def recommendation_fingerprint(result: RecommendationResult):
    """Canonical, comparable form of a recommendation result.

    Captures every externally observable part of the answer — query, route,
    resolution method, confidence, candidate set, evaluation outcome and the
    full crowd task result down to individual answers and response times —
    while excluding process-local serial numbers (task ids), which are the
    only field where a sharded run may differ from the sequential oracle.
    """
    query = result.query
    return (
        (query.origin, query.destination, query.departure_time_s, query.max_response_time_s),
        _route_fingerprint(result.route),
        result.method,
        result.confidence,
        tuple(_route_fingerprint(candidate) for candidate in result.candidates),
        _evaluation_fingerprint(result.evaluation),
        _task_result_fingerprint(result.task_result),
    )


def response_fingerprint(response: RecommendResponse):
    """Fingerprint of the result inside a service response envelope."""
    return recommendation_fingerprint(response.result)


# ----------------------------------------------------------- truth wire codec
class TruthDeltaBlock:
    """A truth delta as flat index arrays — the columnar wire format.

    One row per truth, in delta (= parent record) order:

    * ``origin_index``/``destination_index`` — the endpoint's road-network
      *node index* (truth endpoints are node locations by construction;
      the rare off-node endpoint is carried verbatim in
      ``origin_overrides``/``destination_overrides`` with ``-1`` in the
      index column);
    * ``path_nodes``/``path_offsets`` — every route path concatenated into
      one node-id array with CSR offsets;
    * ``confidence_codes``/``verified_by_codes``/``source_codes`` —
      dictionary-encoded against per-block vocabularies (confidences and the
      enum-like strings repeat heavily across a delta);
    * ``meta_key_codes``/``meta_values``/``meta_offsets`` — route metadata
      flattened into key-code + float-value columns (a row with non-float
      metadata values is carried verbatim in ``irregular_meta``);
    * ``truth_ids``/``time_slots``/``supports`` — plain columns.

    On the wire (``__getstate__``) the arrays are packed into a single
    zlib-compressed buffer, so ``pickle.dumps(block)`` is a fraction of the
    pickled object list — path payloads dominate large deltas and node-index
    arrays compress far better than nested ``VerifiedTruth`` object trees.
    :meth:`decode_truths` reconstructs the exact original truths (the
    round-trip is equality-preserving field for field);
    :meth:`~repro.core.truth.TruthDatabase.adopt_all` accepts a block
    directly and decodes it against its own network.
    """

    _COLUMNS = (
        "truth_ids",
        "origin_index",
        "destination_index",
        "time_slots",
        "confidence_codes",
        "verified_by_codes",
        "source_codes",
        "supports",
        "path_offsets",
        "path_nodes",
        "meta_offsets",
        "meta_key_codes",
        "meta_values",
    )

    __slots__ = _COLUMNS + (
        "confidence_vocab",
        "verified_by_vocab",
        "source_vocab",
        "meta_key_vocab",
        "origin_overrides",
        "destination_overrides",
        "irregular_meta",
        # The workspace this delta belongs to ("" = the default tenant).
        # Rides the wire envelope so a pool worker can adopt the rows into
        # the matching per-tenant warm truth base without trusting message
        # framing alone.
        "tenant",
    )

    def __len__(self) -> int:
        return len(self.truth_ids)

    # ------------------------------------------------------------------ wire
    def __getstate__(self):
        schema = []
        parts = []
        for name in self._COLUMNS:
            column = getattr(self, name)
            schema.append((name, column.dtype.str, len(column)))
            parts.append(column.tobytes())
        # Level 1 already collapses the index-array redundancy (sequential
        # ids, clustered node indices, repeated codes); higher levels buy a
        # few percent for several times the CPU on the dispatch path.
        return {
            "schema": tuple(schema),
            "blob": zlib.compress(b"".join(parts), 1),
            "confidence_vocab": self.confidence_vocab,
            "verified_by_vocab": self.verified_by_vocab,
            "source_vocab": self.source_vocab,
            "meta_key_vocab": self.meta_key_vocab,
            "origin_overrides": self.origin_overrides,
            "destination_overrides": self.destination_overrides,
            "irregular_meta": self.irregular_meta,
            "tenant": self.tenant,
        }

    def __setstate__(self, state) -> None:
        buffer = zlib.decompress(state["blob"])
        offset = 0
        for name, dtype_str, length in state["schema"]:
            dtype = np.dtype(dtype_str)
            column = np.frombuffer(buffer, dtype=dtype, count=length, offset=offset)
            offset += length * dtype.itemsize
            object.__setattr__(self, name, column)
        for name in (
            "confidence_vocab",
            "verified_by_vocab",
            "source_vocab",
            "meta_key_vocab",
            "origin_overrides",
            "destination_overrides",
            "irregular_meta",
        ):
            object.__setattr__(self, name, state[name])
        # Blocks serialised before the tenancy subsystem carry no tag.
        object.__setattr__(self, "tenant", state.get("tenant", ""))

    def wire_bytes(self) -> int:
        """Size of this block as it crosses the worker pipe (pickled)."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    # ---------------------------------------------------------------- decode
    def decode_truths(self, network: RoadNetwork) -> List[VerifiedTruth]:
        """Reconstruct the delta as :class:`VerifiedTruth` objects.

        ``network`` resolves node indices back to locations; pool workers
        pass their fork-inherited network (identical to the encoder's), so
        every coordinate comes back bit-exact.
        """
        compiled = network.compiled()
        xs, ys = compiled.xs, compiled.ys
        truth_ids = self.truth_ids.tolist()
        origin_index = self.origin_index.tolist()
        destination_index = self.destination_index.tolist()
        time_slots = self.time_slots.tolist()
        confidences = [self.confidence_vocab[code] for code in self.confidence_codes.tolist()]
        verified_bys = [self.verified_by_vocab[code] for code in self.verified_by_codes.tolist()]
        sources = [self.source_vocab[code] for code in self.source_codes.tolist()]
        supports = self.supports.tolist()
        path_offsets = self.path_offsets.tolist()
        path_nodes = self.path_nodes.tolist()
        meta_offsets = self.meta_offsets.tolist()
        meta_keys = [self.meta_key_vocab[code] for code in self.meta_key_codes.tolist()]
        meta_values = self.meta_values.tolist()

        # Truth endpoints cluster on hot nodes: build each node's Point once.
        points: Dict[int, Point] = {}

        def point_at(index: int, overrides: Dict[int, Tuple[float, float]], row: int) -> Point:
            if index < 0:
                return Point(*overrides[row])
            point = points.get(index)
            if point is None:
                point = Point(xs[index], ys[index])
                points[index] = point
            return point

        new_route = CandidateRoute.__new__
        set_field = object.__setattr__
        truths = []
        for row in range(len(truth_ids)):
            origin = point_at(origin_index[row], self.origin_overrides, row)
            destination = point_at(destination_index[row], self.destination_overrides, row)
            irregular = self.irregular_meta.get(row)
            if irregular is not None:
                metadata = dict(irregular)
            else:
                metadata = {
                    meta_keys[position]: meta_values[position]
                    for position in range(meta_offsets[row], meta_offsets[row + 1])
                }
            # Encoded routes were validated at record time, so the decoder
            # rebuilds them the way pickle would — fields set directly,
            # skipping the constructor's re-validation and copies.
            route = new_route(CandidateRoute)
            set_field(route, "path", tuple(path_nodes[path_offsets[row]:path_offsets[row + 1]]))
            set_field(route, "source", sources[row])
            set_field(route, "support", supports[row])
            set_field(route, "metadata", metadata)
            set_field(route, "_edge_signature", None)
            truths.append(
                VerifiedTruth(
                    truth_id=truth_ids[row],
                    origin=origin,
                    destination=destination,
                    time_slot=time_slots[row],
                    route=route,
                    verified_by=verified_bys[row],
                    confidence=confidences[row],
                )
            )
        return truths


def _int_dtype_for(maximum: int):
    """Smallest of int32/int64 covering ``maximum`` (node/truth ids)."""
    return np.int32 if maximum < 2**31 else np.int64


def encode_truth_delta(
    truths: Sequence[VerifiedTruth], network: RoadNetwork, tenant: str = ""
) -> TruthDeltaBlock:
    """Encode a truth delta into its columnar wire form.

    ``network`` must be the store's road network — endpoints are looked up in
    its compiled location index so they travel as node indices.  The
    function is total: endpoints off the network and non-float metadata fall
    back to small per-row override tables instead of failing, so any delta a
    :class:`~repro.core.truth.TruthDatabase` can hold is encodable.
    ``tenant`` tags the block with its workspace (``""`` = default tenant).
    """
    location_index = network.compiled().node_index_by_location()
    block = TruthDeltaBlock.__new__(TruthDeltaBlock)
    block.tenant = tenant

    truth_ids: List[int] = []
    origin_index: List[int] = []
    destination_index: List[int] = []
    time_slots: List[int] = []
    confidence_codes: List[int] = []
    verified_by_codes: List[int] = []
    source_codes: List[int] = []
    supports: List[int] = []
    path_offsets: List[int] = [0]
    path_nodes: List[int] = []
    meta_offsets: List[int] = [0]
    meta_key_codes: List[int] = []
    meta_values: List[float] = []

    confidence_vocab: Dict[float, int] = {}
    verified_by_vocab: Dict[str, int] = {}
    source_vocab: Dict[str, int] = {}
    meta_key_vocab: Dict[str, int] = {}
    origin_overrides: Dict[int, Tuple[float, float]] = {}
    destination_overrides: Dict[int, Tuple[float, float]] = {}
    irregular_meta: Dict[int, Tuple] = {}

    for row, truth in enumerate(truths):
        truth_ids.append(truth.truth_id)
        index = location_index.get((truth.origin.x, truth.origin.y), -1)
        if index < 0:
            origin_overrides[row] = (truth.origin.x, truth.origin.y)
        origin_index.append(index)
        index = location_index.get((truth.destination.x, truth.destination.y), -1)
        if index < 0:
            destination_overrides[row] = (truth.destination.x, truth.destination.y)
        destination_index.append(index)
        time_slots.append(truth.time_slot)
        code = confidence_vocab.setdefault(truth.confidence, len(confidence_vocab))
        confidence_codes.append(code)
        code = verified_by_vocab.setdefault(truth.verified_by, len(verified_by_vocab))
        verified_by_codes.append(code)
        route = truth.route
        code = source_vocab.setdefault(route.source, len(source_vocab))
        source_codes.append(code)
        supports.append(route.support)
        path_nodes.extend(route.path)
        path_offsets.append(len(path_nodes))
        metadata = route.metadata
        if all(type(value) is float for value in metadata.values()):
            for key, value in metadata.items():
                meta_key_codes.append(meta_key_vocab.setdefault(key, len(meta_key_vocab)))
                meta_values.append(value)
        else:
            irregular_meta[row] = tuple(metadata.items())
        meta_offsets.append(len(meta_key_codes))

    id_dtype = _int_dtype_for(max(truth_ids, default=0))
    node_dtype = _int_dtype_for(max(path_nodes, default=0))
    block.truth_ids = np.array(truth_ids, dtype=id_dtype)
    block.origin_index = np.array(origin_index, dtype=np.int32)
    block.destination_index = np.array(destination_index, dtype=np.int32)
    block.time_slots = np.array(time_slots, dtype=np.int32)
    block.confidence_codes = np.array(confidence_codes, dtype=np.int32)
    block.verified_by_codes = np.array(verified_by_codes, dtype=np.int32)
    block.source_codes = np.array(source_codes, dtype=np.int32)
    block.supports = np.array(supports, dtype=np.int64)
    block.path_offsets = np.array(path_offsets, dtype=np.int64)
    block.path_nodes = np.array(path_nodes, dtype=node_dtype)
    block.meta_offsets = np.array(meta_offsets, dtype=np.int64)
    block.meta_key_codes = np.array(meta_key_codes, dtype=np.int32)
    block.meta_values = np.array(meta_values, dtype=np.float64)
    block.confidence_vocab = tuple(confidence_vocab)
    block.verified_by_vocab = tuple(verified_by_vocab)
    block.source_vocab = tuple(source_vocab)
    block.meta_key_vocab = tuple(meta_key_vocab)
    block.origin_overrides = origin_overrides
    block.destination_overrides = destination_overrides
    block.irregular_meta = irregular_meta
    return block
