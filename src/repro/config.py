"""Tunable parameters of the CrowdPlanner system.

The paper names several thresholds (``eta`` for the automatic-answer
confidence, ``eta_time`` for response-time eligibility, ``eta_dis`` for the
knowledge radius, ``eta_#q`` for the per-worker task quota, the familiarity
smoothing ``alpha`` and wrong-answer gain ``beta``).  They are collected here
in one frozen dataclass so experiments can sweep them explicitly instead of
scattering magic numbers through the code base.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class PlannerConfig:
    """Configuration of the end-to-end CrowdPlanner pipeline.

    Attributes
    ----------
    confidence_threshold:
        ``eta`` in the paper — minimum confidence score for the traditional
        route-recommendation (TR) module to answer automatically without
        crowdsourcing.
    agreement_threshold:
        Minimum pairwise route similarity for the TR module to declare that
        candidate routes "agree with each other to a high degree" and store
        one as truth immediately.
    truth_reuse_radius_m:
        Maximum distance (metres) between a request endpoint and a stored
        truth endpoint for the truth to be reused.
    truth_time_slot_minutes:
        Width of the departure-time slot attached to each verified truth.
    min_landmark_set_size_slack:
        Extra landmarks (beyond ``ceil(log2(n))``) the landmark selector is
        allowed to consider.
    worker_quota:
        ``eta_#q`` — maximum number of outstanding tasks per worker.
    response_time_threshold:
        ``eta_time`` — minimum probability of answering before the deadline.
    knowledge_radius_m:
        ``eta_dis`` — radius around a landmark within which a worker's
        knowledge of it contributes to familiarity.
    familiarity_alpha:
        ``alpha`` — weight of profile distance vs. answer history in the
        familiarity score.
    familiarity_beta:
        ``beta`` — gain credited for a wrong answer (<1).
    workers_per_task:
        ``k`` — number of eligible workers a task is assigned to.
    early_stop_confidence:
        Confidence level at which the early-stop component returns an answer
        before all workers have responded.
    pmf_latent_dim:
        Number of latent factors used by probabilistic matrix factorization.
    reward_per_question:
        Base reward points granted per answered question.
    random_seed:
        Seed for all stochastic components owned by the planner.
    """

    confidence_threshold: float = 0.7
    agreement_threshold: float = 0.85
    truth_reuse_radius_m: float = 250.0
    truth_time_slot_minutes: int = 60
    min_landmark_set_size_slack: int = 3
    worker_quota: int = 5
    response_time_threshold: float = 0.8
    knowledge_radius_m: float = 2_000.0
    familiarity_alpha: float = 0.6
    familiarity_beta: float = 0.3
    workers_per_task: int = 5
    early_stop_confidence: float = 0.9
    pmf_latent_dim: int = 8
    reward_per_question: float = 1.0
    random_seed: int = 7

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any parameter is out of range."""
        if not 0.0 < self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be in (0, 1]")
        if not 0.0 < self.agreement_threshold <= 1.0:
            raise ConfigurationError("agreement_threshold must be in (0, 1]")
        if self.truth_reuse_radius_m <= 0:
            raise ConfigurationError("truth_reuse_radius_m must be positive")
        if self.truth_time_slot_minutes <= 0:
            raise ConfigurationError("truth_time_slot_minutes must be positive")
        if self.worker_quota < 1:
            raise ConfigurationError("worker_quota must be at least 1")
        if not 0.0 < self.response_time_threshold <= 1.0:
            raise ConfigurationError("response_time_threshold must be in (0, 1]")
        if self.knowledge_radius_m <= 0:
            raise ConfigurationError("knowledge_radius_m must be positive")
        if not 0.0 <= self.familiarity_alpha <= 1.0:
            raise ConfigurationError("familiarity_alpha must be in [0, 1]")
        if not 0.0 <= self.familiarity_beta < 1.0:
            raise ConfigurationError("familiarity_beta must be in [0, 1)")
        if self.workers_per_task < 1:
            raise ConfigurationError("workers_per_task must be at least 1")
        if not 0.0 < self.early_stop_confidence <= 1.0:
            raise ConfigurationError("early_stop_confidence must be in (0, 1]")
        if self.pmf_latent_dim < 1:
            raise ConfigurationError("pmf_latent_dim must be at least 1")
        if self.reward_per_question < 0:
            raise ConfigurationError("reward_per_question must be non-negative")

    def with_overrides(self, **overrides: Any) -> "PlannerConfig":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Return the configuration as a plain dictionary (for reporting)."""
        return {
            "confidence_threshold": self.confidence_threshold,
            "agreement_threshold": self.agreement_threshold,
            "truth_reuse_radius_m": self.truth_reuse_radius_m,
            "truth_time_slot_minutes": self.truth_time_slot_minutes,
            "min_landmark_set_size_slack": self.min_landmark_set_size_slack,
            "worker_quota": self.worker_quota,
            "response_time_threshold": self.response_time_threshold,
            "knowledge_radius_m": self.knowledge_radius_m,
            "familiarity_alpha": self.familiarity_alpha,
            "familiarity_beta": self.familiarity_beta,
            "workers_per_task": self.workers_per_task,
            "early_stop_confidence": self.early_stop_confidence,
            "pmf_latent_dim": self.pmf_latent_dim,
            "reward_per_question": self.reward_per_question,
            "random_seed": self.random_seed,
        }


DEFAULT_CONFIG = PlannerConfig()
"""A shared default configuration used when the caller does not supply one."""


#: Names accepted by :attr:`ServiceConfig.backend`.
SERVING_BACKENDS = ("inline", "pooled")

#: Codecs accepted by :attr:`ServiceConfig.truth_wire` — how the pooled
#: backend ships parent→worker truth deltas.
TRUTH_WIRE_FORMATS = ("columnar", "pickle")

#: Policies accepted by :attr:`ServiceConfig.journal_on_error` — what the
#: service does when the journal hits a disk error (ENOSPC, EIO, ...).
JOURNAL_ON_ERROR_MODES = ("raise", "suspend")


@dataclass(frozen=True)
class ServiceConfig(PlannerConfig):
    """Declarative configuration of a :class:`~repro.serving.RecommendationService`.

    Extends :class:`PlannerConfig` with the serving-layer knobs, so one
    object can describe both the planner pipeline and the service wrapped
    around it (build the planner with :meth:`planner_config`).
    :class:`~repro.serving.tenancy.WorkspaceService` applies one such
    object's serving knobs to every workspace it hosts, while each
    workspace may substitute its own :class:`PlannerConfig` half.

    Attributes
    ----------
    backend:
        Which :class:`~repro.serving.protocol.ServingBackend` serves batches:
        ``"inline"`` (the sequential oracle, in-process) or ``"pooled"``
        (the persistent forked worker pool).
    pool_size:
        Worker-process count of the pooled backend; ``None`` means one per
        available CPU.
    max_shard_fraction:
        Hotspot-splitting knob of the pooled backend: any interaction
        component holding more than this fraction of a batch is staged as an
        ordered dataflow of sub-shards connected by truth-delta hand-offs
        (see :func:`repro.serving.shards.split_oversized`), so a dominant
        city-center destination stops serialising the whole pool.  ``None``
        (the default) keeps components whole.  Merges, truth-id issuance and
        journaling stay in strict submission order, so results are identical
        for every value — only parallelism depends on it.
    use_processes:
        When ``False`` (or on platforms without ``fork``), the pooled
        backend executes shards inline through the same clone-and-merge
        machinery — results are identical, only the parallelism is lost.
    max_pending_batches:
        Submission-queue bound: :meth:`RecommendationService.submit` raises
        :class:`~repro.exceptions.ServingError` once this many submitted
        batches await collection.
    merge_every_batches:
        Cadence at which the parent pushes merged truth deltas to pool
        workers that sat out recent batches.  Workers taking part in a batch
        always receive the deltas they are missing with their shard
        dispatch, so this only bounds how stale an *idle* worker's warm
        partition may grow — it never affects results.
    truth_wire:
        Codec for parent→worker truth-delta streaming: ``"columnar"`` (the
        default — deltas travel as a
        :class:`~repro.serving.protocol.TruthDeltaBlock` of node-index
        arrays, several times smaller on the wire) or ``"pickle"`` (the
        pickled-object fallback).  A pure transport choice — decoded deltas
        are exactly the pickled objects, so results never depend on it.
    respawn_workers:
        When ``True`` (the default) the pooled backend replaces dead pool
        workers in place — immediately when the supervisor declares one
        dead mid-batch, and at the next batch edge for anything that
        slipped through: one process is re-forked per loss — inheriting
        the parent's current truth state — instead of resubmitting around
        a shrinking pool until whole-pool loss forces a full re-fork.
        Purely a capacity/latency policy; results are identical either way.
    journal_path:
        Directory of the :class:`~repro.serving.journal.TruthJournal`.
        When set, the service appends every batch's truth delta to an
        on-disk log (with periodic compacted snapshots) and, on open,
        replays any existing journal into the planner — so re-opening a
        service on the same path after a crash recovers the exact
        pre-crash truth state.  ``None`` (the default) disables
        durability.
    journal_fsync:
        Whether the journal fsyncs after every appended record (the
        default).  Disabling trades crash durability of the last few
        batches for append latency; recovery correctness for whatever
        *is* on disk is unaffected (torn tails are truncated either way).
    snapshot_every_truths:
        Compaction cadence of the journal: once this many truths have
        accumulated since the last snapshot, the journal writes a
        compacted snapshot of the whole store and starts a fresh delta
        segment, bounding replay time.
    heartbeat_interval_s:
        Cadence at which a busy pool worker's heartbeat thread signals
        liveness to the parent while it executes or adopts deltas.
    rpc_deadline_s:
        Supervision deadline: a dispatched worker that has neither
        replied nor heartbeat within this window is declared hung, killed,
        and its in-flight shard resubmitted.  Must exceed
        ``heartbeat_interval_s`` with margin; only latency (never results)
        depends on it.
    hedge_after_s:
        Straggler budget for hedged execution.  A dispatched shard whose
        wall-clock exceeds this budget while its worker still heartbeats
        (slow, not hung) is speculatively re-dispatched to an idle worker;
        the first outcome wins and the duplicate is discarded by shard id.
        Safe because the crowd RNG is content-keyed, so duplicate outcomes
        are bit-identical — only latency depends on the hedge.  The
        overtaken worker is given ``rpc_deadline_s`` (non-renewable) to
        finish its stale reply before being killed.  ``None`` (the
        default) disables hedging.
    journal_on_error:
        Degrade ladder for journal disk faults (``OSError`` on append or
        snapshot — ENOSPC, EIO, ...): ``"raise"`` (the default) surfaces
        the fault as a :class:`~repro.exceptions.JournalError` and fails
        the batch; ``"suspend"`` stops journaling, marks the service
        degraded (``statistics()["resilience"]["journal_suspended"]``) and
        keeps serving — ``recover`` then replays to the last *durable*
        batch, and the driver re-submits the rest, exactly as after a
        torn tail.  Answers never depend on the mode.
    max_respawns_per_batch:
        Circuit breaker of the mid-batch supervisor: after this many
        worker respawns within one batch, the backend stops re-forking and
        degrades the batch's remaining shards to inline (parent-process)
        execution instead of failing the ticket.
    respawn_backoff_s / respawn_backoff_max_s:
        Bounded exponential backoff (with jitter) between mid-batch
        respawns: the n-th respawn of a batch waits
        ``min(respawn_backoff_s * 2**n, respawn_backoff_max_s)`` plus a
        random jitter of up to ``respawn_backoff_s``.
    pipeline_window:
        Rolling-window size of the cross-batch pipelined scheduler: how many
        consecutive pending batches the service hands to the backend in one
        :meth:`~repro.serving.protocol.ServingBackend.execute_window` call.
        ``1`` (the default) is the per-batch barrier — byte-for-byte the
        pre-pipelining behaviour.  With a larger window the pooled backend
        dispatches a shard of batch N+1 as soon as every earlier in-flight
        batch whose reach-expanded destination cells intersect the shard's
        has merged (see :mod:`repro.serving.pipeline`), keeping the pool
        saturated across batch boundaries.  Merges stay strictly in
        submission order, so results are identical for every window size —
        only latency and throughput depend on it.
    stream_batch_size:
        Default batch size of :meth:`RecommendationService.stream`.
        :meth:`~repro.serving.RecommendationService.stream` also keeps up to
        ``pipeline_window`` submitted batches outstanding before redeeming,
        so a stream actually engages the window scheduler.
    share_candidate_generation:
        Default for the batch-level candidate-generation memo (see
        :meth:`CrowdPlanner.recommend_batch`); never changes answers.
    """

    backend: str = "pooled"
    pool_size: Optional[int] = None
    max_shard_fraction: Optional[float] = None
    use_processes: bool = True
    max_pending_batches: int = 16
    merge_every_batches: int = 1
    truth_wire: str = "columnar"
    respawn_workers: bool = True
    journal_path: Optional[str] = None
    journal_fsync: bool = True
    snapshot_every_truths: int = 512
    heartbeat_interval_s: float = 0.5
    rpc_deadline_s: float = 8.0
    hedge_after_s: Optional[float] = None
    journal_on_error: str = "raise"
    max_respawns_per_batch: int = 2
    respawn_backoff_s: float = 0.05
    respawn_backoff_max_s: float = 1.0
    pipeline_window: int = 1
    stream_batch_size: int = 32
    share_candidate_generation: bool = True

    def validate(self) -> None:
        super().validate()
        if self.snapshot_every_truths < 1:
            raise ConfigurationError("snapshot_every_truths must be at least 1")
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be positive")
        if self.rpc_deadline_s <= self.heartbeat_interval_s:
            raise ConfigurationError(
                "rpc_deadline_s must exceed heartbeat_interval_s (a busy worker "
                "is only as fresh as its last heartbeat)"
            )
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ConfigurationError(
                "hedge_after_s must be positive (or None to disable hedging)"
            )
        if self.journal_on_error not in JOURNAL_ON_ERROR_MODES:
            raise ConfigurationError(
                f"journal_on_error must be one of {JOURNAL_ON_ERROR_MODES}, "
                f"got {self.journal_on_error!r}"
            )
        if self.max_respawns_per_batch < 0:
            raise ConfigurationError("max_respawns_per_batch must be non-negative")
        if self.respawn_backoff_s < 0:
            raise ConfigurationError("respawn_backoff_s must be non-negative")
        if self.respawn_backoff_max_s < self.respawn_backoff_s:
            raise ConfigurationError(
                "respawn_backoff_max_s must be at least respawn_backoff_s"
            )
        if self.backend not in SERVING_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {SERVING_BACKENDS}, got {self.backend!r}"
            )
        if self.pool_size is not None and self.pool_size < 1:
            raise ConfigurationError("pool_size must be at least 1 (or None for one per CPU)")
        if self.max_shard_fraction is not None and not (0 < self.max_shard_fraction <= 1):
            raise ConfigurationError(
                "max_shard_fraction must be in (0, 1] (or None to keep components whole)"
            )
        if self.max_pending_batches < 1:
            raise ConfigurationError("max_pending_batches must be at least 1")
        if self.merge_every_batches < 1:
            raise ConfigurationError("merge_every_batches must be at least 1")
        if self.truth_wire not in TRUTH_WIRE_FORMATS:
            raise ConfigurationError(
                f"truth_wire must be one of {TRUTH_WIRE_FORMATS}, got {self.truth_wire!r}"
            )
        if self.pipeline_window < 1:
            raise ConfigurationError("pipeline_window must be at least 1")
        if self.stream_batch_size < 1:
            raise ConfigurationError("stream_batch_size must be at least 1")

    @classmethod
    def from_planner_config(cls, config: PlannerConfig, **overrides: Any) -> "ServiceConfig":
        """Lift a planner configuration into a service configuration."""
        base = {field.name: getattr(config, field.name) for field in fields(PlannerConfig)}
        base.update(overrides)
        return cls(**base)

    def planner_config(self) -> PlannerConfig:
        """The embedded planner-level configuration (for building the planner)."""
        return PlannerConfig(
            **{field.name: getattr(self, field.name) for field in fields(PlannerConfig)}
        )

    def to_dict(self) -> Dict[str, Any]:
        report = super().to_dict()
        planner_fields = {field.name for field in fields(PlannerConfig)}
        for field in fields(self):
            if field.name not in planner_fields:
                report[field.name] = getattr(self, field.name)
        return report


DEFAULT_SERVICE_CONFIG = ServiceConfig()
"""A shared default service configuration."""
