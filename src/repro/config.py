"""Tunable parameters of the CrowdPlanner system.

The paper names several thresholds (``eta`` for the automatic-answer
confidence, ``eta_time`` for response-time eligibility, ``eta_dis`` for the
knowledge radius, ``eta_#q`` for the per-worker task quota, the familiarity
smoothing ``alpha`` and wrong-answer gain ``beta``).  They are collected here
in one frozen dataclass so experiments can sweep them explicitly instead of
scattering magic numbers through the code base.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from .exceptions import ConfigurationError


@dataclass(frozen=True)
class PlannerConfig:
    """Configuration of the end-to-end CrowdPlanner pipeline.

    Attributes
    ----------
    confidence_threshold:
        ``eta`` in the paper — minimum confidence score for the traditional
        route-recommendation (TR) module to answer automatically without
        crowdsourcing.
    agreement_threshold:
        Minimum pairwise route similarity for the TR module to declare that
        candidate routes "agree with each other to a high degree" and store
        one as truth immediately.
    truth_reuse_radius_m:
        Maximum distance (metres) between a request endpoint and a stored
        truth endpoint for the truth to be reused.
    truth_time_slot_minutes:
        Width of the departure-time slot attached to each verified truth.
    min_landmark_set_size_slack:
        Extra landmarks (beyond ``ceil(log2(n))``) the landmark selector is
        allowed to consider.
    worker_quota:
        ``eta_#q`` — maximum number of outstanding tasks per worker.
    response_time_threshold:
        ``eta_time`` — minimum probability of answering before the deadline.
    knowledge_radius_m:
        ``eta_dis`` — radius around a landmark within which a worker's
        knowledge of it contributes to familiarity.
    familiarity_alpha:
        ``alpha`` — weight of profile distance vs. answer history in the
        familiarity score.
    familiarity_beta:
        ``beta`` — gain credited for a wrong answer (<1).
    workers_per_task:
        ``k`` — number of eligible workers a task is assigned to.
    early_stop_confidence:
        Confidence level at which the early-stop component returns an answer
        before all workers have responded.
    pmf_latent_dim:
        Number of latent factors used by probabilistic matrix factorization.
    reward_per_question:
        Base reward points granted per answered question.
    random_seed:
        Seed for all stochastic components owned by the planner.
    """

    confidence_threshold: float = 0.7
    agreement_threshold: float = 0.85
    truth_reuse_radius_m: float = 250.0
    truth_time_slot_minutes: int = 60
    min_landmark_set_size_slack: int = 3
    worker_quota: int = 5
    response_time_threshold: float = 0.8
    knowledge_radius_m: float = 2_000.0
    familiarity_alpha: float = 0.6
    familiarity_beta: float = 0.3
    workers_per_task: int = 5
    early_stop_confidence: float = 0.9
    pmf_latent_dim: int = 8
    reward_per_question: float = 1.0
    random_seed: int = 7

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any parameter is out of range."""
        if not 0.0 < self.confidence_threshold <= 1.0:
            raise ConfigurationError("confidence_threshold must be in (0, 1]")
        if not 0.0 < self.agreement_threshold <= 1.0:
            raise ConfigurationError("agreement_threshold must be in (0, 1]")
        if self.truth_reuse_radius_m <= 0:
            raise ConfigurationError("truth_reuse_radius_m must be positive")
        if self.truth_time_slot_minutes <= 0:
            raise ConfigurationError("truth_time_slot_minutes must be positive")
        if self.worker_quota < 1:
            raise ConfigurationError("worker_quota must be at least 1")
        if not 0.0 < self.response_time_threshold <= 1.0:
            raise ConfigurationError("response_time_threshold must be in (0, 1]")
        if self.knowledge_radius_m <= 0:
            raise ConfigurationError("knowledge_radius_m must be positive")
        if not 0.0 <= self.familiarity_alpha <= 1.0:
            raise ConfigurationError("familiarity_alpha must be in [0, 1]")
        if not 0.0 <= self.familiarity_beta < 1.0:
            raise ConfigurationError("familiarity_beta must be in [0, 1)")
        if self.workers_per_task < 1:
            raise ConfigurationError("workers_per_task must be at least 1")
        if not 0.0 < self.early_stop_confidence <= 1.0:
            raise ConfigurationError("early_stop_confidence must be in (0, 1]")
        if self.pmf_latent_dim < 1:
            raise ConfigurationError("pmf_latent_dim must be at least 1")
        if self.reward_per_question < 0:
            raise ConfigurationError("reward_per_question must be non-negative")

    def with_overrides(self, **overrides: Any) -> "PlannerConfig":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Return the configuration as a plain dictionary (for reporting)."""
        return {
            "confidence_threshold": self.confidence_threshold,
            "agreement_threshold": self.agreement_threshold,
            "truth_reuse_radius_m": self.truth_reuse_radius_m,
            "truth_time_slot_minutes": self.truth_time_slot_minutes,
            "min_landmark_set_size_slack": self.min_landmark_set_size_slack,
            "worker_quota": self.worker_quota,
            "response_time_threshold": self.response_time_threshold,
            "knowledge_radius_m": self.knowledge_radius_m,
            "familiarity_alpha": self.familiarity_alpha,
            "familiarity_beta": self.familiarity_beta,
            "workers_per_task": self.workers_per_task,
            "early_stop_confidence": self.early_stop_confidence,
            "pmf_latent_dim": self.pmf_latent_dim,
            "reward_per_question": self.reward_per_question,
            "random_seed": self.random_seed,
        }


DEFAULT_CONFIG = PlannerConfig()
"""A shared default configuration used when the caller does not supply one."""
