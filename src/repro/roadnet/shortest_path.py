"""Shortest-path algorithms over :class:`~repro.roadnet.graph.RoadNetwork`.

Dijkstra and A* with pluggable edge-cost functions, plus Yen's algorithm for
k-shortest loopless paths.  The web-service route recommenders are built on
these, and the trajectory generator uses perturbed edge costs to create
driver-preferred routes that deviate from the pure shortest path.

All searches run on the network's :class:`~repro.roadnet.compiled.CompiledGraph`
flat-array fast path (CSR adjacency, precomputed metric cost vectors, pooled
search state).  ``cost`` still accepts any ``Callable[[RoadEdge], float]`` —
the well-known :func:`length_cost` / :func:`free_flow_time_cost` callables
(and the metric names ``"length"`` / ``"time"``) resolve to cost vectors
precomputed at compile time; arbitrary callables are evaluated once per edge
per call instead of once per relaxation, which in particular lets Yen's spur
searches share a single evaluation.  Routes are bit-identical to the
reference implementations in :mod:`repro.roadnet.reference` (same relaxation
order, same heap tie-breaking, same floating-point accumulation order).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

from ..exceptions import NoPathError, RoadNetworkError
from .compiled import CompiledGraph, METRIC_LENGTH, METRIC_TIME
from .graph import RoadEdge, RoadNetwork

EdgeCost = Callable[[RoadEdge], float]
CostSpec = Union[EdgeCost, str]


def length_cost(edge: RoadEdge) -> float:
    """Edge cost equal to the segment length in metres."""
    return edge.length_m


def free_flow_time_cost(edge: RoadEdge) -> float:
    """Edge cost equal to the free-flow traversal time in seconds."""
    return edge.free_flow_travel_time_s


def _metric_vector(compiled: CompiledGraph, cost: CostSpec) -> Optional[List[float]]:
    """The precompiled vector for a named metric, or ``None`` for callables.

    Any metric registered on the compiled graph with
    :meth:`CompiledGraph.register_metric` (e.g. the transfer network's
    popularity costs) resolves here by name.  Raises for unresolvable metric
    name strings, so every cost-spec consumer shares one dispatch (and one
    error message).
    """
    if cost is length_cost or cost == METRIC_LENGTH:
        return compiled.metric_costs(METRIC_LENGTH)
    if cost is free_flow_time_cost or cost == METRIC_TIME:
        return compiled.metric_costs(METRIC_TIME)
    if isinstance(cost, str):
        return compiled.metric_costs(cost)
    return None


def resolve_cost_vector(compiled: CompiledGraph, cost: CostSpec) -> Tuple[List[float], bool]:
    """Resolve a cost spec to ``(per-edge cost vector in CSR order, is_metric)``.

    The canonical callables and their metric names hit vectors precomputed at
    compile time, and registered metric names hit vectors stored by
    :meth:`CompiledGraph.register_metric` (``is_metric=True`` — known
    non-negative, since built-in metrics are validated positive at
    construction and registered vectors at registration); any other callable
    is evaluated once per edge and must be range-checked by the caller.
    """
    vector = _metric_vector(compiled, cost)
    if vector is not None:
        return vector, True
    return compiled.cost_vector(cost), False


def _endpoint_indices(
    network: RoadNetwork, compiled: CompiledGraph, origin: int, destination: int
) -> Tuple[int, int]:
    if not network.has_node(origin):
        raise RoadNetworkError(f"unknown origin node {origin!r}")
    if not network.has_node(destination):
        raise RoadNetworkError(f"unknown destination node {destination!r}")
    return compiled.index_of[origin], compiled.index_of[destination]


def _check_non_negative(costs: Sequence[float]) -> None:
    if costs and min(costs) < 0:
        raise RoadNetworkError("edge costs must be non-negative")


def dijkstra_path(
    network: RoadNetwork,
    origin: int,
    destination: int,
    cost: CostSpec = length_cost,
    forbidden_nodes: Optional[set] = None,
    forbidden_edges: Optional[set] = None,
) -> List[int]:
    """Return the minimum-cost node path from ``origin`` to ``destination``.

    ``forbidden_nodes`` and ``forbidden_edges`` support Yen's algorithm and
    "avoid this area" style queries.  Raises :class:`NoPathError` when the
    destination is unreachable.
    """
    compiled = network.compiled()
    source, target = _endpoint_indices(network, compiled, origin, destination)
    if forbidden_nodes and (origin in forbidden_nodes or destination in forbidden_nodes):
        raise NoPathError(origin, destination)
    costs, is_metric = resolve_cost_vector(compiled, cost)
    if not is_metric:
        _check_non_negative(costs)
    adjacency = compiled.relaxation_lists(costs)

    index_of = compiled.index_of
    blocked_nodes = (
        frozenset(index_of[n] for n in forbidden_nodes if n in index_of)
        if forbidden_nodes
        else None
    )
    blocked_positions = None
    if forbidden_edges:
        edge_pos = compiled.edge_pos
        blocked_positions = frozenset(
            edge_pos[(index_of[a], index_of[b])]
            for a, b in forbidden_edges
            if a in index_of and b in index_of and (index_of[a], index_of[b]) in edge_pos
        )
    path = compiled.dijkstra(adjacency, source, target, blocked_nodes, blocked_positions)
    if path is None:
        raise NoPathError(origin, destination)
    node_ids = compiled.node_ids
    return [node_ids[i] for i in path]


def astar_path(
    network: RoadNetwork,
    origin: int,
    destination: int,
    cost: CostSpec = length_cost,
    heuristic_speed_kmh: Optional[float] = None,
) -> List[int]:
    """A* search with a straight-line admissible heuristic.

    With the default length cost the heuristic is the Euclidean distance to
    the destination.  For time costs, pass ``heuristic_speed_kmh`` as the
    fastest speed in the network so the heuristic stays admissible.  The
    heuristic is a per-destination column precomputed on the compiled graph
    (:meth:`CompiledGraph.heuristic_column`), so repeated queries towards
    the same goal pay no heuristic arithmetic after the first.
    """
    compiled = network.compiled()
    source, target = _endpoint_indices(network, compiled, origin, destination)
    if heuristic_speed_kmh is None:
        heuristic_scale = 1.0
    else:
        heuristic_scale = heuristic_speed_kmh / 3.6
        if heuristic_scale <= 0:
            raise RoadNetworkError("heuristic_speed_kmh must be positive")
    costs, _ = resolve_cost_vector(compiled, cost)
    path = compiled.astar(compiled.relaxation_lists(costs), source, target, heuristic_scale)
    if path is None:
        raise NoPathError(origin, destination)
    node_ids = compiled.node_ids
    return [node_ids[i] for i in path]


def path_cost(network: RoadNetwork, path: Sequence[int], cost: CostSpec = length_cost) -> float:
    """Total cost of a node path under ``cost``."""
    network.validate_path(path)
    compiled = network.compiled()
    costs = _metric_vector(compiled, cost)
    if costs is None:
        # One-off callable: evaluating only the path's own edges is cheaper
        # than building a full cost vector.
        return sum(cost(network.edge(a, b)) for a, b in zip(path, path[1:]))
    index_of = compiled.index_of
    return compiled.path_cost(costs, [index_of[n] for n in path])


def k_shortest_paths(
    network: RoadNetwork,
    origin: int,
    destination: int,
    k: int,
    cost: CostSpec = length_cost,
) -> List[List[int]]:
    """Yen's algorithm: up to ``k`` loopless paths in increasing cost order.

    Used to simulate map services that offer alternative routes, and by the
    trajectory generator to give drivers a menu of plausible routes.  The
    cost vector is resolved once and shared across every spur search, and
    duplicate candidates are rejected with an O(1) set lookup instead of the
    former O(k·|candidates|·|path|) scan.
    """
    if k <= 0:
        return []
    compiled = network.compiled()
    source, target = _endpoint_indices(network, compiled, origin, destination)
    costs, is_metric = resolve_cost_vector(compiled, cost)
    if not is_metric:
        _check_non_negative(costs)
    adjacency = compiled.relaxation_lists(costs)

    shortest = compiled.dijkstra(adjacency, source, target)
    if shortest is None:
        raise NoPathError(origin, destination)

    edge_pos = compiled.edge_pos
    accepted: List[List[int]] = [shortest]
    # Every path ever pushed as a candidate (still queued or already
    # accepted); candidate paths are compared as tuples, whose ordering under
    # heapq matches the reference's list comparison exactly.
    seen: Set[Tuple[int, ...]] = {tuple(shortest)}
    candidates: List[Tuple[float, Tuple[int, ...]]] = []
    # Lawler's optimisation: spur scans below the index where a path deviated
    # from its generator would recompute searches whose results are already in
    # ``seen`` (the forbidden sets are unchanged there), so each accepted path
    # records its deviation index and scanning resumes from it.
    deviation_index: dict = {tuple(shortest): 0}

    while len(accepted) < k:
        previous = accepted[-1]
        start = deviation_index[tuple(previous)]
        # ``matching`` tracks the accepted paths sharing the current root
        # prefix; narrowing it one node at a time replaces the reference's
        # per-spur O(k·|path|) prefix-slice comparisons.  ``root_nodes``
        # accumulates the interior root nodes forbidden to spur searches.
        matching = [p for p in accepted if p[:start] == previous[:start]]
        root_nodes = set(previous[:start])
        for spur_index in range(start, len(previous) - 1):
            spur_node = previous[spur_index]
            matching = [p for p in matching if len(p) > spur_index and p[spur_index] == spur_node]
            forbidden_positions = frozenset(
                edge_pos[(p[spur_index], p[spur_index + 1])] for p in matching
            )
            spur_path = compiled.dijkstra(
                adjacency,
                spur_node,
                target,
                frozenset(root_nodes) if root_nodes else None,
                forbidden_positions,
            )
            root_nodes.add(spur_node)
            if spur_path is None:
                continue
            total_path = previous[:spur_index] + spur_path
            total_key = tuple(total_path)
            if total_key in seen:
                continue
            seen.add(total_key)
            deviation_index[total_key] = spur_index
            total_cost = compiled.path_cost(costs, total_path)
            heapq.heappush(candidates, (total_cost, total_key))
        if not candidates:
            break
        _, best_candidate = heapq.heappop(candidates)
        accepted.append(list(best_candidate))

    node_ids = compiled.node_ids
    return [[node_ids[i] for i in path] for path in accepted]
