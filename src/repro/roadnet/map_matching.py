"""Map matching: snapping GPS points to road-network intersections and paths.

The trajectory substrate stores raw GPS pings; popular-route mining and
anchor-based calibration both need those pings expressed in terms of the road
graph.  The matcher here is a nearest-node matcher with a shortest-path
gap-filling step — far simpler than an HMM matcher, but sufficient because the
synthetic GPS noise is small relative to block size, and it keeps the matched
output a *valid connected node path*, which is the invariant everything
downstream relies on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..exceptions import NoPathError, TrajectoryError
from ..spatial import Point
from .graph import RoadNetwork
from .shortest_path import dijkstra_path, length_cost


class MapMatcher:
    """Snaps point sequences onto connected node paths of a road network."""

    def __init__(self, network: RoadNetwork, max_snap_distance_m: float = 300.0):
        if max_snap_distance_m <= 0:
            raise TrajectoryError("max_snap_distance_m must be positive")
        self.network = network
        self.max_snap_distance_m = max_snap_distance_m

    def snap_point(self, point: Point) -> Optional[int]:
        """Return the nearest intersection id, or ``None`` if too far from the network."""
        return self.network.nearest_node(point, max_radius=self.max_snap_distance_m)

    def match(self, points: Sequence[Point]) -> List[int]:
        """Match a GPS point sequence to a connected node path.

        Consecutive duplicate snaps are collapsed; gaps between snapped nodes
        that are not adjacent in the graph are filled with the shortest path
        between them.  Points that snap to nothing (off-network noise) are
        skipped.  Raises :class:`TrajectoryError` if fewer than two distinct
        nodes remain.
        """
        if len(points) < 2:
            raise TrajectoryError("need at least two points to match a trajectory")
        snapped: List[int] = []
        for point in points:
            node_id = self.snap_point(point)
            if node_id is None:
                continue
            if not snapped or snapped[-1] != node_id:
                snapped.append(node_id)
        if len(snapped) < 2:
            raise TrajectoryError("trajectory does not overlap the road network")
        return self._connect(snapped)

    def _connect(self, nodes: Sequence[int]) -> List[int]:
        """Fill non-adjacent consecutive node pairs with shortest-path segments."""
        path: List[int] = [nodes[0]]
        for target in nodes[1:]:
            current = path[-1]
            if current == target:
                continue
            if self.network.has_edge(current, target):
                path.append(target)
                continue
            try:
                bridge = dijkstra_path(self.network, current, target, cost=length_cost)
            except NoPathError as error:
                raise TrajectoryError(
                    f"cannot connect matched nodes {current!r} -> {target!r}"
                ) from error
            path.extend(bridge[1:])
        # Remove immediate backtracking artefacts (a-b-a) introduced by noisy
        # snapping near an intersection.
        cleaned: List[int] = []
        for node in path:
            if len(cleaned) >= 2 and cleaned[-2] == node:
                cleaned.pop()
                continue
            cleaned.append(node)
        if len(cleaned) < 2:
            raise TrajectoryError("matched path collapsed to a single node")
        return cleaned
