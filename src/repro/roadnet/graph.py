"""Road-network graph model.

A :class:`RoadNetwork` is a directed graph whose nodes are road intersections
(with planar coordinates) and whose edges are road segments annotated with
length, road class, speed limit and traffic-light information.  The paper's
routes are "a source, a destination, and a sequence of consecutive road
intersections in-between", i.e. node paths on this graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import RoadNetworkError
from ..spatial import BoundingBox, GridIndex, Point
from .compiled import CompiledGraph


class RoadClass(enum.Enum):
    """Coarse functional road classes with typical free-flow speeds."""

    HIGHWAY = "highway"
    ARTERIAL = "arterial"
    COLLECTOR = "collector"
    LOCAL = "local"

    @property
    def default_speed_kmh(self) -> float:
        return _DEFAULT_SPEEDS[self]

    @property
    def traffic_light_probability(self) -> float:
        """Probability that an intersection on this road class is signalised."""
        return _LIGHT_PROBABILITY[self]


_DEFAULT_SPEEDS = {
    RoadClass.HIGHWAY: 100.0,
    RoadClass.ARTERIAL: 60.0,
    RoadClass.COLLECTOR: 45.0,
    RoadClass.LOCAL: 30.0,
}

_LIGHT_PROBABILITY = {
    RoadClass.HIGHWAY: 0.02,
    RoadClass.ARTERIAL: 0.55,
    RoadClass.COLLECTOR: 0.35,
    RoadClass.LOCAL: 0.15,
}


@dataclass(frozen=True)
class RoadNode:
    """A road intersection."""

    node_id: int
    location: Point
    has_traffic_light: bool = False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"node {self.node_id} @ ({self.location.x:.0f}, {self.location.y:.0f})"


@dataclass(frozen=True)
class RoadEdge:
    """A directed road segment between two intersections."""

    source: int
    target: int
    length_m: float
    road_class: RoadClass = RoadClass.LOCAL
    speed_limit_kmh: Optional[float] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise RoadNetworkError("edge length must be positive")

    @property
    def key(self) -> Tuple[int, int]:
        return (self.source, self.target)

    @property
    def free_flow_speed_kmh(self) -> float:
        """Speed limit if set, otherwise the road-class default."""
        if self.speed_limit_kmh is not None:
            return self.speed_limit_kmh
        return self.road_class.default_speed_kmh

    @property
    def free_flow_travel_time_s(self) -> float:
        """Traversal time in seconds at free-flow speed."""
        return self.length_m / (self.free_flow_speed_kmh / 3.6)


class RoadNetwork:
    """A directed road graph with spatial lookup of its intersections."""

    def __init__(self, index_cell_size: float = 500.0):
        self._nodes: Dict[int, RoadNode] = {}
        self._edges: Dict[Tuple[int, int], RoadEdge] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._reverse_adjacency: Dict[int, List[int]] = {}
        self._index: GridIndex[int] = GridIndex(cell_size=index_cell_size)
        self._version = 0
        self._compiled: Optional[CompiledGraph] = None

    # --------------------------------------------------------- compiled view
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (nodes or edges)."""
        return self._version

    def compiled(self) -> CompiledGraph:
        """The flat-array (CSR) view of this network, built lazily.

        The compiled view is cached and reused until the network mutates;
        ``add_node`` / ``add_edge`` invalidate it by bumping ``version``.
        """
        if self._compiled is None or self._compiled.version != self._version:
            self._compiled = CompiledGraph(self)
        return self._compiled

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: RoadNode) -> None:
        """Add an intersection; adding an existing id replaces it."""
        self._version += 1
        self._nodes[node.node_id] = node
        self._adjacency.setdefault(node.node_id, [])
        self._reverse_adjacency.setdefault(node.node_id, [])
        self._index.insert(node.node_id, node.location)

    def node(self, node_id: int) -> RoadNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise RoadNetworkError(f"unknown node id {node_id!r}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def node_location(self, node_id: int) -> Point:
        return self.node(node_id).location

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ edges
    def add_edge(self, edge: RoadEdge, bidirectional: bool = False) -> None:
        """Add a directed edge; ``bidirectional=True`` also adds the reverse."""
        if edge.source not in self._nodes or edge.target not in self._nodes:
            raise RoadNetworkError(
                f"edge {edge.key} references a node that has not been added"
            )
        if edge.source == edge.target:
            raise RoadNetworkError("self-loop edges are not allowed")
        self._version += 1
        self._edges[edge.key] = edge
        if edge.target not in self._adjacency[edge.source]:
            self._adjacency[edge.source].append(edge.target)
        if edge.source not in self._reverse_adjacency[edge.target]:
            self._reverse_adjacency[edge.target].append(edge.source)
        if bidirectional:
            reverse = RoadEdge(
                source=edge.target,
                target=edge.source,
                length_m=edge.length_m,
                road_class=edge.road_class,
                speed_limit_kmh=edge.speed_limit_kmh,
                name=edge.name,
            )
            self.add_edge(reverse, bidirectional=False)

    def edge(self, source: int, target: int) -> RoadEdge:
        try:
            return self._edges[(source, target)]
        except KeyError:
            raise RoadNetworkError(f"no edge from {source!r} to {target!r}") from None

    def has_edge(self, source: int, target: int) -> bool:
        return (source, target) in self._edges

    def edges(self) -> Iterator[RoadEdge]:
        return iter(self._edges.values())

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def neighbors(self, node_id: int) -> List[int]:
        """Outgoing neighbours of ``node_id`` (copy, safe to mutate)."""
        if node_id not in self._adjacency:
            raise RoadNetworkError(f"unknown node id {node_id!r}")
        return list(self._adjacency[node_id])

    def predecessors(self, node_id: int) -> List[int]:
        """Incoming neighbours of ``node_id``."""
        if node_id not in self._reverse_adjacency:
            raise RoadNetworkError(f"unknown node id {node_id!r}")
        return list(self._reverse_adjacency[node_id])

    def out_edges(self, node_id: int) -> List[RoadEdge]:
        return [self._edges[(node_id, target)] for target in self.neighbors(node_id)]

    # ------------------------------------------------------------- geometry
    def bounding_box(self) -> BoundingBox:
        if not self._nodes:
            raise RoadNetworkError("cannot compute the bounding box of an empty network")
        return BoundingBox.from_points(node.location for node in self._nodes.values())

    def nearest_node(self, point: Point, max_radius: Optional[float] = None) -> Optional[int]:
        """Return the id of the intersection closest to ``point``."""
        result = self._index.nearest(point, max_radius=max_radius)
        if result is None:
            return None
        return result[0]

    def nodes_within(self, point: Point, radius: float) -> List[Tuple[int, float]]:
        """Return ``(node_id, distance)`` for intersections within ``radius``."""
        return self._index.within_radius(point, radius)

    # ------------------------------------------------------------------ paths
    def validate_path(self, path: Sequence[int]) -> None:
        """Raise :class:`RoadNetworkError` unless ``path`` is a connected node path."""
        if len(path) < 2:
            raise RoadNetworkError("a path needs at least two nodes")
        for node_id in path:
            if node_id not in self._nodes:
                raise RoadNetworkError(f"path references unknown node {node_id!r}")
        for source, target in zip(path, path[1:]):
            if (source, target) not in self._edges:
                raise RoadNetworkError(f"path uses missing edge ({source!r}, {target!r})")

    def path_length(self, path: Sequence[int]) -> float:
        """Total length of a node path, in metres."""
        self.validate_path(path)
        return sum(self._edges[(a, b)].length_m for a, b in zip(path, path[1:]))

    def path_free_flow_time(self, path: Sequence[int]) -> float:
        """Free-flow travel time of a node path, in seconds."""
        self.validate_path(path)
        return sum(
            self._edges[(a, b)].free_flow_travel_time_s for a, b in zip(path, path[1:])
        )

    def path_points(self, path: Sequence[int]) -> List[Point]:
        """Return the intersection coordinates along a node path."""
        self.validate_path(path)
        return [self._nodes[node_id].location for node_id in path]

    def path_traffic_lights(self, path: Sequence[int]) -> int:
        """Number of signalised intersections along a node path."""
        self.validate_path(path)
        return sum(1 for node_id in path if self._nodes[node_id].has_traffic_light)

    # -------------------------------------------------------------- summary
    def describe(self) -> Dict[str, float]:
        """Return a summary of the network size (for logging and reports)."""
        return {
            "nodes": float(self.node_count),
            "edges": float(self.edge_count),
            "total_length_km": sum(edge.length_m for edge in self.edges()) / 1000.0,
        }
