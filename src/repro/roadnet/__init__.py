"""Road-network substrate: graph model, synthetic city generators, routing and map matching."""

from .compiled import CompiledGraph
from .graph import RoadClass, RoadEdge, RoadNetwork, RoadNode
from .generators import GridCityConfig, generate_grid_city, generate_radial_city
from .shortest_path import astar_path, dijkstra_path, k_shortest_paths, path_cost
from .travel_time import SpeedProfile, TravelTimeModel
from .map_matching import MapMatcher

__all__ = [
    "CompiledGraph",
    "RoadClass",
    "RoadEdge",
    "RoadNetwork",
    "RoadNode",
    "GridCityConfig",
    "generate_grid_city",
    "generate_radial_city",
    "astar_path",
    "dijkstra_path",
    "k_shortest_paths",
    "path_cost",
    "SpeedProfile",
    "TravelTimeModel",
    "MapMatcher",
]
