"""Synthetic city generators.

The reproduction cannot ship the real Beijing road map the paper evaluated
on, so it generates synthetic cities instead.  Two families are provided:

* :func:`generate_grid_city` — a Manhattan-style grid with arterials every few
  blocks, a ring of highways, per-edge speed limits and traffic lights.  This
  is the workhorse for experiments: it produces many near-equal-length
  alternative routes between od-pairs, which is exactly the regime in which
  recommendation sources disagree.
* :func:`generate_radial_city` — a ring-and-spoke city used as a second
  topology in robustness tests.

Both generators are deterministic for a given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..spatial import Point
from ..utils.rng import derive_rng
from .graph import RoadClass, RoadEdge, RoadNetwork, RoadNode


@dataclass(frozen=True)
class GridCityConfig:
    """Parameters of the synthetic grid city.

    Attributes
    ----------
    rows, cols:
        Number of intersections along each axis.
    block_size_m:
        Distance between adjacent intersections.
    arterial_every:
        Every ``arterial_every``-th row/column is an arterial road (faster,
        more traffic lights).
    highway_ring:
        If true, the outermost ring is classed as highway.
    jitter_m:
        Random positional jitter applied to each intersection, which breaks
        exact ties between alternative routes.
    drop_edge_probability:
        Probability that an interior local street segment is removed, which
        makes the grid less regular and forces detours.
    seed:
        Seed for jitter, traffic lights and edge removal.
    """

    rows: int = 20
    cols: int = 20
    block_size_m: float = 200.0
    arterial_every: int = 5
    highway_ring: bool = True
    jitter_m: float = 15.0
    drop_edge_probability: float = 0.03
    seed: int = 7

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ConfigurationError("grid city needs at least 2x2 intersections")
        if self.block_size_m <= 0:
            raise ConfigurationError("block_size_m must be positive")
        if self.arterial_every < 1:
            raise ConfigurationError("arterial_every must be at least 1")
        if not 0.0 <= self.drop_edge_probability < 0.5:
            raise ConfigurationError("drop_edge_probability must be in [0, 0.5)")
        if self.jitter_m < 0:
            raise ConfigurationError("jitter_m must be non-negative")


def _grid_node_id(row: int, col: int, cols: int) -> int:
    return row * cols + col


def _classify_grid_edge(row_a: int, col_a: int, row_b: int, col_b: int, config: GridCityConfig) -> RoadClass:
    """Classify a grid edge from the rows/columns it connects."""
    on_border = (
        row_a in (0, config.rows - 1)
        and row_b in (0, config.rows - 1)
        or col_a in (0, config.cols - 1)
        and col_b in (0, config.cols - 1)
    )
    if config.highway_ring and on_border:
        return RoadClass.HIGHWAY
    if row_a == row_b and row_a % config.arterial_every == 0:
        return RoadClass.ARTERIAL
    if col_a == col_b and col_a % config.arterial_every == 0:
        return RoadClass.ARTERIAL
    if row_a == row_b and row_a % config.arterial_every == config.arterial_every // 2:
        return RoadClass.COLLECTOR
    if col_a == col_b and col_a % config.arterial_every == config.arterial_every // 2:
        return RoadClass.COLLECTOR
    return RoadClass.LOCAL


def generate_grid_city(config: Optional[GridCityConfig] = None) -> RoadNetwork:
    """Generate a Manhattan-style grid city road network."""
    config = config or GridCityConfig()
    rng = derive_rng(config.seed, "grid-city")
    network = RoadNetwork(index_cell_size=max(100.0, config.block_size_m))

    # Nodes with jitter and traffic lights.
    for row in range(config.rows):
        for col in range(config.cols):
            jitter_x = rng.uniform(-config.jitter_m, config.jitter_m)
            jitter_y = rng.uniform(-config.jitter_m, config.jitter_m)
            location = Point(col * config.block_size_m + jitter_x, row * config.block_size_m + jitter_y)
            on_arterial = row % config.arterial_every == 0 or col % config.arterial_every == 0
            light_probability = 0.6 if on_arterial else 0.15
            network.add_node(
                RoadNode(
                    node_id=_grid_node_id(row, col, config.cols),
                    location=location,
                    has_traffic_light=rng.random() < light_probability,
                )
            )

    # Edges: connect horizontal and vertical neighbours bidirectionally.
    def _add(row_a: int, col_a: int, row_b: int, col_b: int) -> None:
        source = _grid_node_id(row_a, col_a, config.cols)
        target = _grid_node_id(row_b, col_b, config.cols)
        road_class = _classify_grid_edge(row_a, col_a, row_b, col_b, config)
        if road_class is RoadClass.LOCAL and rng.random() < config.drop_edge_probability:
            return
        length = network.node_location(source).distance_to(network.node_location(target))
        edge = RoadEdge(
            source=source,
            target=target,
            length_m=max(length, 1.0),
            road_class=road_class,
            name=f"{road_class.value}-{row_a}.{col_a}-{row_b}.{col_b}",
        )
        network.add_edge(edge, bidirectional=True)

    for row in range(config.rows):
        for col in range(config.cols):
            if col + 1 < config.cols:
                _add(row, col, row, col + 1)
            if row + 1 < config.rows:
                _add(row, col, row + 1, col)

    _ensure_strong_connectivity(network)
    return network


def generate_radial_city(
    rings: int = 5,
    spokes: int = 12,
    ring_spacing_m: float = 600.0,
    seed: int = 7,
) -> RoadNetwork:
    """Generate a ring-and-spoke city centred on the origin."""
    if rings < 1 or spokes < 3:
        raise ConfigurationError("radial city needs at least 1 ring and 3 spokes")
    if ring_spacing_m <= 0:
        raise ConfigurationError("ring_spacing_m must be positive")
    rng = derive_rng(seed, "radial-city")
    network = RoadNetwork(index_cell_size=max(200.0, ring_spacing_m / 2))

    center_id = 0
    network.add_node(RoadNode(node_id=center_id, location=Point(0.0, 0.0), has_traffic_light=True))

    def node_id(ring: int, spoke: int) -> int:
        return 1 + (ring - 1) * spokes + spoke

    for ring in range(1, rings + 1):
        radius = ring * ring_spacing_m
        for spoke in range(spokes):
            angle = 2 * math.pi * spoke / spokes
            jitter = rng.uniform(-0.03, 0.03)
            location = Point(radius * math.cos(angle + jitter), radius * math.sin(angle + jitter))
            network.add_node(
                RoadNode(
                    node_id=node_id(ring, spoke),
                    location=location,
                    has_traffic_light=rng.random() < 0.4,
                )
            )

    def add_edge(source: int, target: int, road_class: RoadClass) -> None:
        length = network.node_location(source).distance_to(network.node_location(target))
        network.add_edge(
            RoadEdge(source=source, target=target, length_m=max(length, 1.0), road_class=road_class),
            bidirectional=True,
        )

    # Spokes: center -> ring 1 -> ... -> ring n along each angle (arterials).
    for spoke in range(spokes):
        add_edge(center_id, node_id(1, spoke), RoadClass.ARTERIAL)
        for ring in range(1, rings):
            add_edge(node_id(ring, spoke), node_id(ring + 1, spoke), RoadClass.ARTERIAL)

    # Rings: adjacent spokes on the same ring (outermost ring is a highway).
    for ring in range(1, rings + 1):
        road_class = RoadClass.HIGHWAY if ring == rings else RoadClass.COLLECTOR
        for spoke in range(spokes):
            add_edge(node_id(ring, spoke), node_id(ring, (spoke + 1) % spokes), road_class)

    return network


def _ensure_strong_connectivity(network: RoadNetwork) -> None:
    """Reconnect nodes stranded by random edge removal.

    Dropping local streets can isolate an intersection; rather than leaving
    unreachable nodes (which would make route requests fail spuriously), each
    stranded node is linked back to its nearest reachable neighbour.
    """
    node_ids = network.node_ids()
    if not node_ids:
        return
    root = node_ids[0]
    reachable = _reachable_from(network, root)
    for node_id in node_ids:
        if node_id in reachable:
            continue
        location = network.node_location(node_id)
        candidates = [
            (other, location.distance_to(network.node_location(other)))
            for other in reachable
        ]
        nearest, distance = min(candidates, key=lambda pair: pair[1])
        network.add_edge(
            RoadEdge(
                source=node_id,
                target=nearest,
                length_m=max(distance, 1.0),
                road_class=RoadClass.LOCAL,
                name="reconnect",
            ),
            bidirectional=True,
        )
        reachable.update(_reachable_from(network, node_id))


def _reachable_from(network: RoadNetwork, root: int) -> set:
    """Return the set of node ids reachable from ``root`` by directed edges."""
    seen = {root}
    frontier = [root]
    while frontier:
        current = frontier.pop()
        for neighbor in network.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def random_od_pairs(
    network: RoadNetwork,
    count: int,
    min_distance_m: float = 1_000.0,
    seed: int = 11,
) -> List[Tuple[int, int]]:
    """Sample origin/destination node pairs at least ``min_distance_m`` apart."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    rng = derive_rng(seed, "od-pairs")
    node_ids = network.node_ids()
    pairs: List[Tuple[int, int]] = []
    attempts = 0
    max_attempts = max(1000, count * 200)
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        origin, destination = rng.sample(node_ids, 2)
        distance = network.node_location(origin).distance_to(network.node_location(destination))
        if distance >= min_distance_m:
            pairs.append((origin, destination))
    return pairs
