"""Time-dependent travel times.

The paper's truths are tagged with a departure time, and candidate routes can
differ in quality by time of day (rush-hour congestion).  This module models a
daily congestion profile per road class and exposes a
:class:`TravelTimeModel` that turns (edge, departure time) into a traversal
time, plus traffic-light waiting penalties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..exceptions import ConfigurationError
from .graph import RoadClass, RoadEdge, RoadNetwork

SECONDS_PER_DAY = 24 * 3600


@dataclass(frozen=True)
class SpeedProfile:
    """A 24-hour congestion multiplier profile.

    ``multiplier(t)`` is the factor by which free-flow travel time is
    inflated at time-of-day ``t`` (in seconds since midnight).  The default
    profile has a morning and an evening rush hour, which is the standard
    double-peak shape of urban traffic.
    """

    morning_peak_hour: float = 8.0
    evening_peak_hour: float = 17.5
    peak_multiplier: float = 1.8
    peak_width_hours: float = 1.5
    base_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_multiplier < self.base_multiplier:
            raise ConfigurationError("peak_multiplier must be >= base_multiplier")
        if self.peak_width_hours <= 0:
            raise ConfigurationError("peak_width_hours must be positive")

    def multiplier(self, time_of_day_s: float) -> float:
        """Congestion multiplier at ``time_of_day_s`` seconds since midnight."""
        hour = (time_of_day_s % SECONDS_PER_DAY) / 3600.0
        bump = 0.0
        for peak in (self.morning_peak_hour, self.evening_peak_hour):
            distance = min(abs(hour - peak), 24.0 - abs(hour - peak))
            bump = max(bump, math.exp(-0.5 * (distance / self.peak_width_hours) ** 2))
        return self.base_multiplier + (self.peak_multiplier - self.base_multiplier) * bump


DEFAULT_PROFILES: Dict[RoadClass, SpeedProfile] = {
    RoadClass.HIGHWAY: SpeedProfile(peak_multiplier=1.6),
    RoadClass.ARTERIAL: SpeedProfile(peak_multiplier=2.0),
    RoadClass.COLLECTOR: SpeedProfile(peak_multiplier=1.7),
    RoadClass.LOCAL: SpeedProfile(peak_multiplier=1.3),
}


class TravelTimeModel:
    """Computes time-dependent edge and path travel times.

    Parameters
    ----------
    profiles:
        Per-road-class congestion profiles (defaults to
        :data:`DEFAULT_PROFILES`).
    traffic_light_penalty_s:
        Expected waiting time added for each signalised intersection crossed.
    """

    def __init__(
        self,
        profiles: Optional[Dict[RoadClass, SpeedProfile]] = None,
        traffic_light_penalty_s: float = 25.0,
    ):
        if traffic_light_penalty_s < 0:
            raise ConfigurationError("traffic_light_penalty_s must be non-negative")
        self.profiles = dict(DEFAULT_PROFILES)
        if profiles:
            self.profiles.update(profiles)
        self.traffic_light_penalty_s = traffic_light_penalty_s

    def edge_travel_time(self, edge: RoadEdge, departure_time_s: float = 9 * 3600.0) -> float:
        """Traversal time of ``edge`` in seconds when entered at ``departure_time_s``."""
        profile = self.profiles.get(edge.road_class, SpeedProfile())
        return edge.free_flow_travel_time_s * profile.multiplier(departure_time_s)

    def path_travel_time(
        self,
        network: RoadNetwork,
        path: Sequence[int],
        departure_time_s: float = 9 * 3600.0,
    ) -> float:
        """Travel time of a node path, accumulating congestion and light waits.

        The clock advances as the path is traversed, so a long path that
        starts before rush hour can run into it.
        """
        network.validate_path(path)
        clock = departure_time_s
        total = 0.0
        for source, target in zip(path, path[1:]):
            edge = network.edge(source, target)
            traversal = self.edge_travel_time(edge, clock)
            if network.node(target).has_traffic_light:
                traversal += self.traffic_light_penalty_s
            total += traversal
            clock += traversal
        return total

    def edge_cost_at(self, departure_time_s: float):
        """Return an edge-cost function (for Dijkstra/A*) frozen at a departure time."""

        def cost(edge: RoadEdge) -> float:
            return self.edge_travel_time(edge, departure_time_s)

        return cost
