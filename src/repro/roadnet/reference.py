"""Reference shortest-path implementations (pre-compiled-graph era).

These are the original dict-per-edge pure-Python algorithms that
``repro.roadnet.shortest_path`` used before the flat-array
:class:`~repro.roadnet.compiled.CompiledGraph` fast path replaced them.
They are kept verbatim as the behavioural oracle: the equivalence tests in
``tests/roadnet/test_routing_equivalence.py`` assert the compiled
implementations return bit-identical routes, and the hot-path benchmarks
(``benchmarks/bench_hot_paths.py``) measure the speedup against them.

Do not "optimise" this module — its value is that it stays slow and obviously
correct.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import NoPathError, RoadNetworkError
from .graph import RoadEdge, RoadNetwork

EdgeCost = Callable[[RoadEdge], float]


def length_cost(edge: RoadEdge) -> float:
    """Edge cost equal to the segment length in metres."""
    return edge.length_m


def free_flow_time_cost(edge: RoadEdge) -> float:
    """Edge cost equal to the free-flow traversal time in seconds."""
    return edge.free_flow_travel_time_s


def dijkstra_path(
    network: RoadNetwork,
    origin: int,
    destination: int,
    cost: EdgeCost = length_cost,
    forbidden_nodes: Optional[set] = None,
    forbidden_edges: Optional[set] = None,
) -> List[int]:
    """Return the minimum-cost node path from ``origin`` to ``destination``."""
    if not network.has_node(origin):
        raise RoadNetworkError(f"unknown origin node {origin!r}")
    if not network.has_node(destination):
        raise RoadNetworkError(f"unknown destination node {destination!r}")
    forbidden_nodes = forbidden_nodes or set()
    forbidden_edges = forbidden_edges or set()
    if origin in forbidden_nodes or destination in forbidden_nodes:
        raise NoPathError(origin, destination)

    counter = itertools.count()
    frontier: List[Tuple[float, int, int]] = [(0.0, next(counter), origin)]
    best_cost: Dict[int, float] = {origin: 0.0}
    parent: Dict[int, int] = {}
    settled: set = set()

    while frontier:
        current_cost, _, current = heapq.heappop(frontier)
        if current in settled:
            continue
        settled.add(current)
        if current == destination:
            return _reconstruct(parent, origin, destination)
        for neighbor in network.neighbors(current):
            if neighbor in forbidden_nodes or (current, neighbor) in forbidden_edges:
                continue
            edge = network.edge(current, neighbor)
            edge_cost = cost(edge)
            if edge_cost < 0:
                raise RoadNetworkError("edge costs must be non-negative")
            candidate = current_cost + edge_cost
            if candidate < best_cost.get(neighbor, float("inf")):
                best_cost[neighbor] = candidate
                parent[neighbor] = current
                heapq.heappush(frontier, (candidate, next(counter), neighbor))

    raise NoPathError(origin, destination)


def astar_path(
    network: RoadNetwork,
    origin: int,
    destination: int,
    cost: EdgeCost = length_cost,
    heuristic_speed_kmh: Optional[float] = None,
) -> List[int]:
    """A* search with a straight-line admissible heuristic."""
    if not network.has_node(origin):
        raise RoadNetworkError(f"unknown origin node {origin!r}")
    if not network.has_node(destination):
        raise RoadNetworkError(f"unknown destination node {destination!r}")
    goal = network.node_location(destination)

    if heuristic_speed_kmh is None:
        def heuristic(node_id: int) -> float:
            return network.node_location(node_id).distance_to(goal)
    else:
        meters_per_second = heuristic_speed_kmh / 3.6
        if meters_per_second <= 0:
            raise RoadNetworkError("heuristic_speed_kmh must be positive")

        def heuristic(node_id: int) -> float:
            return network.node_location(node_id).distance_to(goal) / meters_per_second

    counter = itertools.count()
    frontier: List[Tuple[float, int, int]] = [(heuristic(origin), next(counter), origin)]
    best_cost: Dict[int, float] = {origin: 0.0}
    parent: Dict[int, int] = {}
    settled: set = set()

    while frontier:
        _, _, current = heapq.heappop(frontier)
        if current in settled:
            continue
        settled.add(current)
        if current == destination:
            return _reconstruct(parent, origin, destination)
        current_cost = best_cost[current]
        for neighbor in network.neighbors(current):
            edge = network.edge(current, neighbor)
            candidate = current_cost + cost(edge)
            if candidate < best_cost.get(neighbor, float("inf")):
                best_cost[neighbor] = candidate
                parent[neighbor] = current
                heapq.heappush(frontier, (candidate + heuristic(neighbor), next(counter), neighbor))

    raise NoPathError(origin, destination)


def path_cost(network: RoadNetwork, path: Sequence[int], cost: EdgeCost = length_cost) -> float:
    """Total cost of a node path under ``cost``."""
    network.validate_path(path)
    return sum(cost(network.edge(a, b)) for a, b in zip(path, path[1:]))


def k_shortest_paths(
    network: RoadNetwork,
    origin: int,
    destination: int,
    k: int,
    cost: EdgeCost = length_cost,
) -> List[List[int]]:
    """Yen's algorithm: up to ``k`` loopless paths in increasing cost order."""
    if k <= 0:
        return []
    shortest = dijkstra_path(network, origin, destination, cost)
    accepted: List[List[int]] = [shortest]
    candidates: List[Tuple[float, List[int]]] = []

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous) - 1):
            spur_node = previous[spur_index]
            root_path = previous[: spur_index + 1]
            forbidden_edges = set()
            for path in accepted:
                if len(path) > spur_index and path[: spur_index + 1] == root_path:
                    forbidden_edges.add((path[spur_index], path[spur_index + 1]))
            forbidden_nodes = set(root_path[:-1])
            try:
                spur_path = dijkstra_path(
                    network,
                    spur_node,
                    destination,
                    cost,
                    forbidden_nodes=forbidden_nodes,
                    forbidden_edges=forbidden_edges,
                )
            except NoPathError:
                continue
            total_path = root_path[:-1] + spur_path
            total_cost = path_cost(network, total_path, cost)
            if all(total_path != existing for _, existing in candidates) and total_path not in accepted:
                heapq.heappush(candidates, (total_cost, total_path))
        if not candidates:
            break
        _, best_candidate = heapq.heappop(candidates)
        accepted.append(best_candidate)

    return accepted


def _reconstruct(parent: Dict[int, int], origin: int, destination: int) -> List[int]:
    path = [destination]
    while path[-1] != origin:
        path.append(parent[path[-1]])
    path.reverse()
    return path
