"""Flat-array (CSR) compiled view of a :class:`~repro.roadnet.graph.RoadNetwork`.

Every hot routing path in the system — candidate generation, trajectory
synthesis, Yen's k-shortest search — funnels through Dijkstra/A* over the road
graph.  The original implementations walked ``Dict[Tuple[int, int], RoadEdge]``
lookups and re-evaluated Python cost callbacks per relaxation.  The
:class:`CompiledGraph` replaces that with:

* **CSR adjacency** — ``indptr`` / ``neighbor`` flat arrays in the exact
  insertion order of the network's adjacency lists, so searches relax edges in
  the same order (and therefore break ties identically) as the reference
  implementations in :mod:`repro.roadnet.reference`;
* **named cost metrics** — per-edge ``"length"`` and ``"time"`` cost vectors
  precomputed once at compile time, so the common searches never call back
  into Python per edge;
* **a reusable search-state pool** — distance/parent/heuristic scratch arrays
  allocated once per graph and recycled across calls with generation stamps,
  so repeated searches (Yen runs dozens of spur searches per query) do not
  reallocate or clear per-node state.

The compiled view is built lazily by :meth:`RoadNetwork.compiled` and
invalidated automatically when the network mutates (the network bumps its
``version`` counter on every ``add_node`` / ``add_edge``).

The hot loops deliberately use Python lists rather than numpy arrays: scalar
indexing of small lists is several times faster than numpy scalar boxing, and
the searches are scalar by nature.  Vectorized consumers can ask for numpy
mirrors via :meth:`CompiledGraph.arrays`.
"""

from __future__ import annotations

import bisect
import heapq
import math
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..exceptions import RoadNetworkError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .graph import RoadEdge, RoadNetwork

#: Named cost metrics resolvable without a Python callback.
METRIC_LENGTH = "length"
METRIC_TIME = "time"


class _SearchState:
    """Preallocated scratch arrays for one concurrent graph search.

    ``stamp``/``settled`` hold the generation number at which the
    corresponding entry was last written; comparing against the current
    generation makes "clearing" the arrays an O(1) counter increment instead
    of an O(n) fill.
    """

    __slots__ = ("dist", "parent", "stamp", "settled", "generation")

    def __init__(self, size: int):
        self.dist: List[float] = [0.0] * size
        self.parent: List[int] = [-1] * size
        self.stamp: List[int] = [0] * size
        self.settled: List[int] = [0] * size
        self.generation = 0

    def next_generation(self) -> int:
        self.generation += 1
        return self.generation


class _LazyHeuristicColumn:
    """Per-touched-node A* heuristic for a destination's first query.

    Indexable like the precomputed list column but computes (and memoizes)
    each node's value on first access with the exact same ``math.hypot``
    arithmetic, so a search guided by it is bit-identical to one guided by
    the full column — it just never pays for nodes it does not touch.
    """

    __slots__ = ("xs", "ys", "goal_x", "goal_y", "scale", "values")

    def __init__(self, xs, ys, goal_x: float, goal_y: float, scale: float):
        self.xs = xs
        self.ys = ys
        self.goal_x = goal_x
        self.goal_y = goal_y
        self.scale = scale
        self.values: Dict[int, float] = {}

    def __getitem__(self, node: int) -> float:
        value = self.values.get(node)
        if value is None:
            value = math.hypot(self.xs[node] - self.goal_x, self.ys[node] - self.goal_y)
            if self.scale != 1.0:
                value /= self.scale
            self.values[node] = value
        return value


class CompiledGraph:
    """Immutable CSR snapshot of a road network for fast repeated searches."""

    def __init__(self, network: "RoadNetwork"):
        node_ids = network.node_ids()
        self.node_ids: List[int] = node_ids
        self.index_of: Dict[int, int] = {nid: i for i, nid in enumerate(node_ids)}
        self.version = network.version

        n = len(node_ids)
        xs: List[float] = [0.0] * n
        ys: List[float] = [0.0] * n
        indptr: List[int] = [0] * (n + 1)
        neighbor: List[int] = []
        edge_records: List["RoadEdge"] = []
        lengths: List[float] = []
        times: List[float] = []
        edge_pos: Dict[Tuple[int, int], int] = {}

        index_of = self.index_of
        for i, nid in enumerate(node_ids):
            location = network.node_location(nid)
            xs[i] = location.x
            ys[i] = location.y
            for edge in network.out_edges(nid):
                edge_pos[(i, index_of[edge.target])] = len(neighbor)
                neighbor.append(index_of[edge.target])
                edge_records.append(edge)
                lengths.append(edge.length_m)
                times.append(edge.free_flow_travel_time_s)
            indptr[i + 1] = len(neighbor)

        self.xs = xs
        self.ys = ys
        self.indptr = indptr
        self.neighbor = neighbor
        self.edge_records = edge_records
        self.edge_pos = edge_pos
        self._metric_costs: Dict[str, List[float]] = {
            METRIC_LENGTH: lengths,
            METRIC_TIME: times,
        }
        self._metric_tokens: Dict[str, object] = {}
        self._metric_adjacency: Dict[str, List[List[Tuple[float, int, int]]]] = {}
        self._arrays: Optional[Dict[str, np.ndarray]] = None
        self._location_index: Optional[Dict[Tuple[float, float], int]] = None
        self._state_pool: List[_SearchState] = []
        # Per-destination A* heuristic columns, LRU-bounded, plus the
        # first-hit probe ledger of the lazy hybrid (see
        # :meth:`heuristic_column`).
        self._heuristic_columns: "OrderedDict[Tuple[int, float], List[float]]" = OrderedDict()
        self._heuristic_probes: "OrderedDict[Tuple[int, float], None]" = OrderedDict()

    # ------------------------------------------------------------- structure
    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def edge_count(self) -> int:
        return len(self.neighbor)

    def metric_costs(self, metric: str) -> List[float]:
        """The precomputed per-edge cost vector of a named metric."""
        try:
            return self._metric_costs[metric]
        except KeyError:
            raise RoadNetworkError(
                f"unknown cost metric {metric!r}; expected one of "
                f"{sorted(self._metric_costs)}"
            ) from None

    def has_metric(self, metric: str) -> bool:
        """Whether ``metric`` names a built-in or registered cost vector."""
        return metric in self._metric_costs

    def metric_token(self, metric: str) -> Optional[object]:
        """The freshness token a registered metric was stored under.

        Consumers that compile derived cost vectors (e.g. the transfer
        network's popularity costs) record the state of their inputs here and
        compare before reuse, so a stale vector is replaced instead of served.
        Built-in metrics and unknown names return ``None``.
        """
        return self._metric_tokens.get(metric)

    def register_metric(self, metric: str, costs: Sequence[float], token: object = None) -> None:
        """Register (or replace) a named per-edge cost vector in CSR order.

        The vector becomes resolvable everywhere a metric name is accepted
        (``dijkstra_path(..., cost="popularity#1")``) and its relaxation lists
        are cached across searches exactly like the built-in metrics.  Costs
        must be non-negative (``inf`` is allowed — it marks an edge as
        effectively untraversable) and cover every edge.  Re-registering a
        name replaces the vector and drops its cached relaxation lists.
        """
        if metric in (METRIC_LENGTH, METRIC_TIME):
            raise RoadNetworkError(f"cannot replace the built-in metric {metric!r}")
        vector = [float(value) for value in costs]
        if len(vector) != self.edge_count:
            raise RoadNetworkError(
                f"metric {metric!r} has {len(vector)} costs for {self.edge_count} edges"
            )
        for value in vector:
            if math.isnan(value) or value < 0:
                raise RoadNetworkError("edge costs must be non-negative")
        self._metric_costs[metric] = vector
        self._metric_tokens[metric] = token
        self._metric_adjacency.pop(metric, None)

    def patch_metric(self, metric: str, entries: Sequence[Tuple[int, float]], token: object = None) -> None:
        """Update individual entries of a registered metric in place.

        ``entries`` are ``(csr_position, cost)`` pairs (positions as in
        :attr:`edge_pos`); untouched entries keep their values, and cached
        relaxation lists are rebuilt only for the nodes owning a patched
        edge — this is what makes incremental cost updates (live popularity
        ingest) O(dirty edges) instead of O(E).  The same non-negativity
        rules as :meth:`register_metric` apply, and the freshness token is
        replaced so consumers can tell the patched vector from a stale one.
        """
        if metric in (METRIC_LENGTH, METRIC_TIME):
            raise RoadNetworkError(f"cannot patch the built-in metric {metric!r}")
        vector = self._metric_costs.get(metric)
        if vector is None:
            raise RoadNetworkError(f"unknown cost metric {metric!r}; register it first")
        edge_count = self.edge_count
        # Validate every entry before the first write: a bad entry must not
        # leave the vector partially patched under its old (well-formed)
        # token, which a later incremental repair would stamp fresh.
        validated = []
        dirty_nodes = set()
        for position, value in entries:
            value = float(value)
            if math.isnan(value) or value < 0:
                raise RoadNetworkError("edge costs must be non-negative")
            if not 0 <= position < edge_count:
                raise RoadNetworkError(f"edge position {position} out of range for {edge_count} edges")
            validated.append((position, value))
            dirty_nodes.add(bisect.bisect_right(self.indptr, position) - 1)
        for position, value in validated:
            vector[position] = value
        self._metric_tokens[metric] = token
        adjacency = self._metric_adjacency.get(metric)
        if adjacency is not None:
            indptr, neighbor = self.indptr, self.neighbor
            for node in dirty_nodes:
                adjacency[node] = [
                    (vector[pos], neighbor[pos], pos)
                    for pos in range(indptr[node], indptr[node + 1])
                ]

    def unregister_metric(self, metric: str) -> None:
        """Drop a registered metric and its caches (unknown names are a no-op).

        Lets owners of short-lived derived metrics bound the graph's memory;
        the built-in metrics cannot be removed.
        """
        if metric in (METRIC_LENGTH, METRIC_TIME):
            raise RoadNetworkError(f"cannot remove the built-in metric {metric!r}")
        self._metric_costs.pop(metric, None)
        self._metric_tokens.pop(metric, None)
        self._metric_adjacency.pop(metric, None)

    def cost_vector(self, cost) -> List[float]:
        """Evaluate an edge-cost callable once per edge, in CSR order."""
        return [cost(edge) for edge in self.edge_records]

    def relaxation_lists(self, costs: Sequence[float]) -> List[List[Tuple[float, int, int]]]:
        """Per-node ``(edge_cost, target, csr_pos)`` tuples for a cost vector.

        This is the shape the search inner loops consume: one list indexing
        plus a tuple unpack per relaxation, instead of separate ``indptr`` /
        ``neighbor`` / ``costs`` lookups.  Lists for the named metric vectors
        are built once and cached; callable-derived vectors get a fresh
        (O(E)) build, which is the same order as evaluating the callable.
        """
        for metric, vector in self._metric_costs.items():
            if costs is vector:
                cached = self._metric_adjacency.get(metric)
                if cached is None:
                    cached = self._build_relaxation_lists(costs)
                    self._metric_adjacency[metric] = cached
                return cached
        return self._build_relaxation_lists(costs)

    def _build_relaxation_lists(self, costs: Sequence[float]) -> List[List[Tuple[float, int, int]]]:
        indptr, neighbor = self.indptr, self.neighbor
        return [
            [(costs[pos], neighbor[pos], pos) for pos in range(indptr[i], indptr[i + 1])]
            for i in range(self.node_count)
        ]

    def node_index_by_location(self) -> Dict[Tuple[float, float], int]:
        """``(x, y) -> node index`` over the compiled nodes (lazy, cached).

        The truth wire codec (:mod:`repro.serving.protocol`) uses this to
        ship truth endpoints — which are always node locations — as node
        *indices* instead of coordinate pairs.  If two nodes share exact
        coordinates the later one wins, which is harmless: the decoder only
        needs the coordinate values back, not the node identity.
        """
        if self._location_index is None:
            self._location_index = {
                (x, y): i for i, (x, y) in enumerate(zip(self.xs, self.ys))
            }
        return self._location_index

    def arrays(self) -> Dict[str, np.ndarray]:
        """Numpy mirrors of the CSR structure (built lazily, then cached)."""
        if self._arrays is None:
            self._arrays = {
                "indptr": np.asarray(self.indptr, dtype=np.int64),
                "neighbor": np.asarray(self.neighbor, dtype=np.int64),
                "x": np.asarray(self.xs, dtype=np.float64),
                "y": np.asarray(self.ys, dtype=np.float64),
                METRIC_LENGTH: np.asarray(self._metric_costs[METRIC_LENGTH], dtype=np.float64),
                METRIC_TIME: np.asarray(self._metric_costs[METRIC_TIME], dtype=np.float64),
            }
        return self._arrays

    #: Heuristic columns kept per graph; beyond this many (destination,
    #: scale) pairs the least recently used column is dropped.  The
    #: first-hit probe ledger is bounded at four times this.
    HEURISTIC_CACHE_LIMIT = 128

    def heuristic_column(self, destination: int, heuristic_scale: float = 1.0):
        """Per-node straight-line heuristic towards ``destination`` (hybrid).

        Returns something indexable by node: on a destination's *first*
        query a :class:`_LazyHeuristicColumn` that computes
        ``hypot(x - goal_x, y - goal_y) / scale`` per touched node on
        demand; from the *second* query on, the fully precomputed column
        (a plain list), built once and cached LRU-bounded.

        The hybrid keeps both traffic shapes fast: hot destinations
        (production's dominant case) index a ready column with zero
        heuristic arithmetic after their second query, while a one-off
        destination — the common case on huge graphs — never pays the
        whole-graph pass, only its search's touched nodes.

        Values are computed with :func:`math.hypot`, *not* ``np.hypot``: the
        two can disagree in the last ulp, and heuristic ulps change heap
        ordering — both forms must reproduce the reference implementation's
        arithmetic exactly (and therefore each other's) for searches to stay
        bit-identical to it.
        """
        key = (destination, heuristic_scale)
        column = self._heuristic_columns.get(key)
        if column is not None:
            self._heuristic_columns.move_to_end(key)
            return column
        probes = self._heuristic_probes
        if key not in probes:
            # First query for this (destination, scale): note it and serve
            # per-touched-node values.
            probes[key] = None
            if len(probes) > 4 * self.HEURISTIC_CACHE_LIMIT:
                probes.popitem(last=False)
            return _LazyHeuristicColumn(
                self.xs, self.ys, self.xs[destination], self.ys[destination], heuristic_scale
            )
        # Second query: the destination is warm — precompute the column.
        del probes[key]
        hypot = math.hypot
        goal_x, goal_y = self.xs[destination], self.ys[destination]
        if heuristic_scale == 1.0:
            column = [hypot(x - goal_x, y - goal_y) for x, y in zip(self.xs, self.ys)]
        else:
            column = [
                hypot(x - goal_x, y - goal_y) / heuristic_scale
                for x, y in zip(self.xs, self.ys)
            ]
        self._heuristic_columns[key] = column
        if len(self._heuristic_columns) > self.HEURISTIC_CACHE_LIMIT:
            self._heuristic_columns.popitem(last=False)
        return column

    # ------------------------------------------------------------ state pool
    def _acquire_state(self) -> _SearchState:
        if self._state_pool:
            return self._state_pool.pop()
        return _SearchState(self.node_count)

    def _release_state(self, state: _SearchState) -> None:
        self._state_pool.append(state)

    # -------------------------------------------------------------- searches
    def dijkstra(
        self,
        adjacency: List[List[Tuple[float, int, int]]],
        origin: int,
        destination: int,
        forbidden_nodes: Optional[frozenset] = None,
        forbidden_positions: Optional[frozenset] = None,
    ) -> Optional[List[int]]:
        """Dijkstra over node *indices*; ``None`` when unreachable.

        ``adjacency`` comes from :meth:`relaxation_lists`, resolved once per
        top-level query so Yen's spur searches share it.  Edges relax in CSR
        (= adjacency insertion) order with the same ``(cost, push-counter)``
        heap tie-breaking as the reference implementation, so returned paths
        are bit-identical to it.
        """
        state = self._acquire_state()
        try:
            gen = state.next_generation()
            dist, parent, stamp, settled = state.dist, state.parent, state.stamp, state.settled
            heappush, heappop = heapq.heappush, heapq.heappop
            blocked_nodes = forbidden_nodes or ()
            blocked_positions = forbidden_positions or ()
            check_blocked = bool(blocked_nodes) or bool(blocked_positions)

            dist[origin] = 0.0
            parent[origin] = -1
            stamp[origin] = gen
            frontier: List[Tuple[float, int, int]] = [(0.0, 0, origin)]
            counter = 1
            while frontier:
                current_cost, _, current = heappop(frontier)
                if settled[current] == gen:
                    continue
                settled[current] = gen
                if current == destination:
                    return self._reconstruct(state, gen, origin, destination)
                for edge_cost, target, pos in adjacency[current]:
                    if check_blocked and (target in blocked_nodes or pos in blocked_positions):
                        continue
                    candidate = current_cost + edge_cost
                    if stamp[target] != gen or candidate < dist[target]:
                        dist[target] = candidate
                        parent[target] = current
                        stamp[target] = gen
                        heappush(frontier, (candidate, counter, target))
                        counter += 1
            return None
        finally:
            self._release_state(state)

    def astar(
        self,
        adjacency: List[List[Tuple[float, int, int]]],
        origin: int,
        destination: int,
        heuristic_scale: float = 1.0,
    ) -> Optional[List[int]]:
        """A* over node indices with a straight-line heuristic.

        ``heuristic_scale`` divides the Euclidean distance (1.0 for length
        costs; metres-per-second of the fastest road for time costs).  The
        heuristic comes from the hybrid per-destination
        :meth:`heuristic_column` — identical arithmetic to the reference —
        so a destination's first search computes only its touched nodes and
        every later search towards the same goal indexes a ready
        precomputed column.
        """
        heuristic = self.heuristic_column(destination, heuristic_scale)
        state = self._acquire_state()
        try:
            gen = state.next_generation()
            dist, parent, stamp, settled = state.dist, state.parent, state.stamp, state.settled
            heappush, heappop = heapq.heappush, heapq.heappop

            dist[origin] = 0.0
            parent[origin] = -1
            stamp[origin] = gen
            frontier: List[Tuple[float, int, int]] = [(heuristic[origin], 0, origin)]
            counter = 1
            while frontier:
                _, _, current = heappop(frontier)
                if settled[current] == gen:
                    continue
                settled[current] = gen
                if current == destination:
                    return self._reconstruct(state, gen, origin, destination)
                current_cost = dist[current]
                for edge_cost, target, _pos in adjacency[current]:
                    candidate = current_cost + edge_cost
                    if stamp[target] != gen or candidate < dist[target]:
                        dist[target] = candidate
                        parent[target] = current
                        stamp[target] = gen
                        heappush(frontier, (candidate + heuristic[target], counter, target))
                        counter += 1
            return None
        finally:
            self._release_state(state)

    def path_cost(self, costs: Sequence[float], path: Sequence[int]) -> float:
        """Sequential-sum cost of an index path (same fp order as reference)."""
        edge_pos = self.edge_pos
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += costs[edge_pos[(a, b)]]
        return total

    @staticmethod
    def _reconstruct(state: _SearchState, gen: int, origin: int, destination: int) -> List[int]:
        parent, stamp = state.parent, state.stamp
        path = [destination]
        node = destination
        while node != origin:
            if stamp[node] != gen:  # pragma: no cover - defensive
                raise RoadNetworkError("path reconstruction escaped the search tree")
            node = parent[node]
            path.append(node)
        path.reverse()
        return path
