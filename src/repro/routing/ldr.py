"""LDR — Local Driver Route mining (Ceikute & Jensen, MDM 2013 [3]).

Ceikute and Jensen compare routing-service output with *local driver
behaviour*: the route an experienced individual driver habitually takes.  The
LDR miner reproduces that: among drivers with historical trips between the
query's endpoints, it picks the most experienced driver (most trips on this
od-pair) and returns that driver's habitual (most frequent) route.  The
recommendation therefore "reflects certain people's preference" — it can be
excellent when a true local exists and idiosyncratic when it does not.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from ..exceptions import InsufficientSupportError, RoutingError
from ..roadnet.graph import RoadNetwork
from ..trajectory.storage import TrajectoryStore
from .base import CandidateRoute, RouteQuery, RouteSource


class LocalDriverRouteMiner(RouteSource):
    """Recommends the habitual route of the most experienced local driver."""

    name = "LDR"

    def __init__(
        self,
        network: RoadNetwork,
        store: TrajectoryStore,
        min_support: int = 2,
        support_radius_m: float = 300.0,
    ):
        if min_support < 0:
            raise RoutingError("min_support must be non-negative")
        self.network = network
        self.store = store
        self.min_support = min_support
        self.support_radius_m = support_radius_m

    def recommend(self, query: RouteQuery) -> CandidateRoute:
        origin_location = self.network.node_location(query.origin)
        destination_location = self.network.node_location(query.destination)
        trajectory_ids = self.store.find_by_od(
            origin_location, destination_location, self.support_radius_m
        )
        if len(trajectory_ids) < self.min_support:
            raise InsufficientSupportError(
                query.origin, query.destination, len(trajectory_ids), self.min_support
            )

        trips_by_driver: Dict[int, List[Tuple[int, ...]]] = defaultdict(list)
        for trajectory_id in trajectory_ids:
            trajectory = self.store.get(trajectory_id)
            trips_by_driver[trajectory.driver_id].append(
                tuple(self.store.matched_path(trajectory_id))
            )

        # The most experienced driver: most trips on this od-pair (ties broken
        # by driver id for determinism).
        best_driver, trips = max(
            trips_by_driver.items(), key=lambda item: (len(item[1]), -item[0])
        )
        habitual_path, frequency = max(
            Counter(trips).items(), key=lambda item: (item[1], -len(item[0]))
        )
        return CandidateRoute(
            path=list(habitual_path),
            source=self.name,
            support=len(trajectory_ids),
            metadata={
                "driver_id": float(best_driver),
                "driver_trips": float(len(trips)),
                "habit_frequency": float(frequency),
                "length_m": self.network.path_length(list(habitual_path)),
            },
        )
