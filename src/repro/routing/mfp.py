"""MFP — Most Frequent Path mining (Luo et al., SIGMOD 2013 [13]).

The time-period-based most frequent path between two places is the concrete
historical path, within the requested departure-time period, that is used by
the largest number of trajectories.  Unlike MPR's probability product, MFP
counts whole-path occurrences, so its answer is always an actually-travelled
route — which is why the paper's conclusion finds "MFP has the highest
possibility to give the best route" among the mining baselines.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

from ..exceptions import InsufficientSupportError, RoutingError
from ..roadnet.graph import RoadNetwork
from ..trajectory.storage import TrajectoryStore
from .base import CandidateRoute, RouteQuery, RouteSource


class MostFrequentPathMiner(RouteSource):
    """Mines the most frequent concrete path for a query's time period.

    Parameters
    ----------
    min_support:
        Minimum number of supporting trajectories between the endpoints; an
        :class:`InsufficientSupportError` is raised below it.
    time_slot_width_s:
        Width of the departure-time period centred on the query's departure
        time.  If no trajectory falls inside the period, the miner widens to
        all periods rather than failing (the time dimension degrades
        gracefully on sparse data).
    support_radius_m:
        Endpoint matching radius.
    """

    name = "MFP"

    def __init__(
        self,
        network: RoadNetwork,
        store: TrajectoryStore,
        min_support: int = 3,
        time_slot_width_s: float = 4 * 3600.0,
        support_radius_m: float = 300.0,
    ):
        if min_support < 0:
            raise RoutingError("min_support must be non-negative")
        if time_slot_width_s <= 0:
            raise RoutingError("time_slot_width_s must be positive")
        self.network = network
        self.store = store
        self.min_support = min_support
        self.time_slot_width_s = time_slot_width_s
        self.support_radius_m = support_radius_m

    def _time_slot(self, departure_time_s: float) -> Tuple[float, float]:
        half = self.time_slot_width_s / 2.0
        start = max(0.0, departure_time_s - half)
        end = min(24 * 3600.0, departure_time_s + half)
        return (start, end)

    def recommend(self, query: RouteQuery) -> CandidateRoute:
        origin_location = self.network.node_location(query.origin)
        destination_location = self.network.node_location(query.destination)

        slot_paths = self.store.paths_between(
            origin_location,
            destination_location,
            self.support_radius_m,
            time_slot=self._time_slot(query.departure_time_s),
        )
        all_paths = self.store.paths_between(
            origin_location, destination_location, self.support_radius_m
        )
        if len(all_paths) < self.min_support:
            raise InsufficientSupportError(
                query.origin, query.destination, len(all_paths), self.min_support
            )
        paths = slot_paths if slot_paths else all_paths

        counts = Counter(tuple(path) for path in paths)
        best_path, frequency = max(counts.items(), key=lambda item: (item[1], -len(item[0])))
        return CandidateRoute(
            path=list(best_path),
            source=self.name,
            support=len(all_paths),
            metadata={
                "frequency": float(frequency),
                "slot_support": float(len(slot_paths)),
                "length_m": self.network.path_length(list(best_path)),
            },
        )
