"""Simulated web map services.

The paper's candidate routes come partly from commercial services (Google
Maps, Bing Maps, TomTom).  Those services fundamentally optimise travelling
distance and/or time, which is exactly why their routes can deviate from what
experienced drivers prefer.  The simulated services below reproduce that
behaviour: a shortest-distance router, a time-dependent fastest router, and an
"alternative aware" service that offers its best few alternatives and picks
the one with the lowest blended cost.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import RoutingError
from ..roadnet.graph import RoadNetwork
from ..roadnet.shortest_path import dijkstra_path, k_shortest_paths, length_cost
from ..roadnet.travel_time import TravelTimeModel
from .base import CandidateRoute, RouteQuery, RouteSource


class ShortestRouteService(RouteSource):
    """A map service returning the minimum-distance route."""

    name = "shortest"

    def __init__(self, network: RoadNetwork):
        self.network = network

    def recommend(self, query: RouteQuery) -> CandidateRoute:
        path = dijkstra_path(self.network, query.origin, query.destination, cost=length_cost)
        return CandidateRoute(
            path=path,
            source=self.name,
            metadata={"length_m": self.network.path_length(path)},
        )


class FastestRouteService(RouteSource):
    """A map service returning the minimum expected travel-time route.

    Travel times are time-dependent (rush-hour congestion), evaluated at the
    query's departure time.
    """

    name = "fastest"

    def __init__(self, network: RoadNetwork, travel_time_model: Optional[TravelTimeModel] = None):
        self.network = network
        self.travel_time_model = travel_time_model or TravelTimeModel()

    def recommend(self, query: RouteQuery) -> CandidateRoute:
        cost = self.travel_time_model.edge_cost_at(query.departure_time_s)
        path = dijkstra_path(self.network, query.origin, query.destination, cost=cost)
        travel_time = self.travel_time_model.path_travel_time(
            self.network, path, query.departure_time_s
        )
        return CandidateRoute(
            path=path,
            source=self.name,
            metadata={
                "length_m": self.network.path_length(path),
                "travel_time_s": travel_time,
            },
        )


class AlternativeAwareService(RouteSource):
    """A map service that surveys a few alternatives and blends distance and time.

    This mimics providers that do not return the strict shortest or strict
    fastest route but a compromise; it gives the candidate-route set a third,
    distinct provider opinion.
    """

    name = "web_alternatives"

    def __init__(
        self,
        network: RoadNetwork,
        travel_time_model: Optional[TravelTimeModel] = None,
        alternatives: int = 3,
        time_weight: float = 0.5,
    ):
        if alternatives < 1:
            raise RoutingError("alternatives must be at least 1")
        if not 0.0 <= time_weight <= 1.0:
            raise RoutingError("time_weight must be in [0, 1]")
        self.network = network
        self.travel_time_model = travel_time_model or TravelTimeModel()
        self.alternatives = alternatives
        self.time_weight = time_weight

    def recommend(self, query: RouteQuery) -> CandidateRoute:
        paths = k_shortest_paths(
            self.network, query.origin, query.destination, self.alternatives, cost=length_cost
        )
        if not paths:
            raise RoutingError("no alternative paths found")
        scored = []
        for path in paths:
            length = self.network.path_length(path)
            time = self.travel_time_model.path_travel_time(
                self.network, path, query.departure_time_s
            )
            # Blend normalised by typical urban speed so metres and seconds
            # are commensurable (36 km/h -> 10 m/s).
            score = (1 - self.time_weight) * length + self.time_weight * time * 10.0
            scored.append((score, length, time, path))
        scored.sort(key=lambda item: item[0])
        _, length, time, best = scored[0]
        return CandidateRoute(
            path=best,
            source=self.name,
            metadata={"length_m": length, "travel_time_s": time},
        )
