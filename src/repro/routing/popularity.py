"""Transfer network shared by the popular-route miners.

A *transfer network* summarises the historical trajectories as edge traversal
counts and node transition probabilities, following the construction used by
popular-route mining work (Chen et al. [4], Wei et al. [23]).  Both MPR and
MFP operate on it; building it once per trajectory store and reusing it keeps
the miners cheap.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import RoutingError
from ..roadnet.graph import RoadNetwork
from ..spatial import Point
from ..trajectory.storage import TrajectoryStore


class TransferNetwork:
    """Edge traversal statistics extracted from historical trajectories."""

    def __init__(self, network: RoadNetwork, store: TrajectoryStore):
        self.network = network
        self.store = store
        self._edge_counts: Dict[Tuple[int, int], int] = defaultdict(int)
        self._node_out_counts: Dict[int, int] = defaultdict(int)
        self._node_counts: Dict[int, int] = defaultdict(int)
        self._total_trajectories = 0
        self._build()

    def _build(self) -> None:
        for trajectory_id in self.store.all_ids():
            path = self.store.matched_path(trajectory_id)
            self._total_trajectories += 1
            for node in path:
                self._node_counts[node] += 1
            for source, target in zip(path, path[1:]):
                self._edge_counts[(source, target)] += 1
                self._node_out_counts[source] += 1

    # ------------------------------------------------------------------ stats
    @property
    def total_trajectories(self) -> int:
        return self._total_trajectories

    def edge_count(self, source: int, target: int) -> int:
        """Number of historical traversals of the directed edge."""
        return self._edge_counts.get((source, target), 0)

    def node_count(self, node_id: int) -> int:
        """Number of historical trajectories passing the node."""
        return self._node_counts.get(node_id, 0)

    def transition_probability(self, source: int, target: int, smoothing: float = 0.1) -> float:
        """P(next node = target | current node = source) with additive smoothing.

        Smoothing over the node's road-graph out-degree keeps unseen edges at
        a small non-zero probability so popularity search stays connected.
        """
        out_degree = max(1, len(self.network.neighbors(source)))
        numerator = self._edge_counts.get((source, target), 0) + smoothing
        denominator = self._node_out_counts.get(source, 0) + smoothing * out_degree
        if denominator <= 0:
            return 0.0
        return numerator / denominator

    def edge_popularity_cost(self, source: int, target: int, smoothing: float = 0.1) -> float:
        """Negative log transition probability — the cost minimised by MPR."""
        probability = self.transition_probability(source, target, smoothing)
        if probability <= 0:
            return float("inf")
        return -math.log(probability)

    def coverage(self) -> float:
        """Fraction of road-network edges traversed by at least one trajectory."""
        if self.network.edge_count == 0:
            return 0.0
        return len(self._edge_counts) / self.network.edge_count

    def hottest_edges(self, count: int = 10) -> List[Tuple[Tuple[int, int], int]]:
        """The ``count`` most traversed edges with their counts."""
        ordered = sorted(self._edge_counts.items(), key=lambda item: (-item[1], item[0]))
        return ordered[:count]


def path_support(store: TrajectoryStore, network: RoadNetwork, path: Sequence[int], radius_m: float = 300.0) -> int:
    """Number of historical trajectories whose od matches the path's endpoints."""
    origin = network.node_location(path[0])
    destination = network.node_location(path[-1])
    return store.support_between(origin, destination, radius_m)
