"""Transfer network shared by the popular-route miners.

A *transfer network* summarises the historical trajectories as edge traversal
counts and node transition probabilities, following the construction used by
popular-route mining work (Chen et al. [4], Wei et al. [23]).  Both MPR and
MFP operate on it; building it once per trajectory store and reusing it keeps
the miners cheap.

Popularity-guided routing needs the ``-log(P)`` cost of every road edge.  The
original path evaluated :meth:`TransferNetwork.edge_popularity_cost` through a
Python closure once per Dijkstra relaxation; :meth:`compiled_cost_metric`
instead compiles the full per-edge cost vector once and registers it on the
road network's :class:`~repro.roadnet.compiled.CompiledGraph`, keyed by the
transfer network's ``version``, so repeated popularity searches reuse both the
vector and its cached relaxation lists.  The scalar methods are retained as
the oracle the compiled vector is tested against.
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict, deque
from typing import Deque, Dict, FrozenSet, List, Sequence, Tuple

from ..roadnet.graph import RoadNetwork
from ..trajectory.storage import TrajectoryStore

_transfer_uids = itertools.count(1)

#: How many ingest batches the dirty-node journal remembers.  A compiled
#: cost vector older than this window falls back to a full recompile.
_INGEST_JOURNAL_LIMIT = 128


class TransferNetwork:
    """Edge traversal statistics extracted from historical trajectories."""

    def __init__(self, network: RoadNetwork, store: TrajectoryStore):
        self.network = network
        self.store = store
        self._uid = next(_transfer_uids)
        self._version = 0
        self._edge_counts: Dict[Tuple[int, int], int] = defaultdict(int)
        self._node_out_counts: Dict[int, int] = defaultdict(int)
        self._node_counts: Dict[int, int] = defaultdict(int)
        self._total_trajectories = 0
        # (version, dirty source nodes) per ingest_path call: the nodes whose
        # out-edge popularity costs that ingest changed.  compiled_cost_metric
        # uses it to patch a registered vector forward instead of recompiling.
        self._ingest_journal: Deque[Tuple[int, FrozenSet[int]]] = deque(maxlen=_INGEST_JOURNAL_LIMIT)
        self._build()

    def _build(self) -> None:
        for trajectory_id in self.store.all_ids():
            self._ingest(self.store.matched_path(trajectory_id))

    def _ingest(self, path: Sequence[int]) -> None:
        self._total_trajectories += 1
        for node in path:
            self._node_counts[node] += 1
        for source, target in zip(path, path[1:]):
            self._edge_counts[(source, target)] += 1
            self._node_out_counts[source] += 1

    # --------------------------------------------------------------- updates
    @property
    def version(self) -> int:
        """Monotonic counter bumped whenever the traversal statistics change.

        Compiled popularity cost vectors are cached against this counter, so
        ingesting new history invalidates them automatically.
        """
        return self._version

    def ingest_path(self, path: Sequence[int]) -> None:
        """Fold one additional matched node path into the statistics.

        Lets a live deployment keep the transfer network warm as new
        trajectories arrive, without rebuilding from the whole store.  The
        nodes whose outgoing transition probabilities change (every non-final
        path node: their out-counts grow, which rescales *all* their
        out-edges) are journalled, so the next :meth:`compiled_cost_metric`
        call patches just those nodes' edges — O(path out-degree) — instead
        of recompiling the whole O(E) cost vector.
        """
        self._ingest(path)
        self._version += 1
        self._ingest_journal.append((self._version, frozenset(path[:-1])))

    def refresh(self) -> None:
        """Rebuild the statistics from the backing store from scratch."""
        self._edge_counts.clear()
        self._node_out_counts.clear()
        self._node_counts.clear()
        self._total_trajectories = 0
        self._build()
        self._version += 1
        # Everything may have changed; compiled vectors must fully recompile.
        self._ingest_journal.clear()

    # ------------------------------------------------------------------ stats
    @property
    def total_trajectories(self) -> int:
        return self._total_trajectories

    def edge_count(self, source: int, target: int) -> int:
        """Number of historical traversals of the directed edge."""
        return self._edge_counts.get((source, target), 0)

    def node_count(self, node_id: int) -> int:
        """Number of historical trajectories passing the node."""
        return self._node_counts.get(node_id, 0)

    def transition_probability(self, source: int, target: int, smoothing: float = 0.1) -> float:
        """P(next node = target | current node = source) with additive smoothing.

        Smoothing over the node's road-graph out-degree keeps unseen edges at
        a small non-zero probability so popularity search stays connected.
        """
        out_degree = max(1, len(self.network.neighbors(source)))
        numerator = self._edge_counts.get((source, target), 0) + smoothing
        denominator = self._node_out_counts.get(source, 0) + smoothing * out_degree
        if denominator <= 0:
            return 0.0
        return numerator / denominator

    def edge_popularity_cost(self, source: int, target: int, smoothing: float = 0.1) -> float:
        """Negative log transition probability — the cost minimised by MPR."""
        probability = self.transition_probability(source, target, smoothing)
        if probability <= 0:
            return float("inf")
        return -math.log(probability)

    def compiled_cost_metric(self, network: RoadNetwork, smoothing: float = 0.1) -> str:
        """Compile the popularity costs into a metric on the compiled graph.

        Returns the metric name to pass as the ``cost`` of
        :func:`~repro.roadnet.shortest_path.dijkstra_path`.  The per-edge
        vector is computed with :meth:`edge_popularity_cost` (so every entry
        is bit-identical to what the former per-relaxation closure produced)
        and registered once per ``(transfer version, smoothing)`` state; both
        graph mutation (a fresh compiled view) and statistic updates (a new
        ``version``) invalidate it.

        Invalidation by :meth:`ingest_path` is repaired *incrementally*: the
        registered vector is patched forward using the dirty-node journal —
        only the out-edges of nodes whose statistics actually changed are
        recomputed (O(ingested paths), not O(E)), with values bit-identical
        to a full recompile since both run the same scalar cost method.  A
        vector older than the journal window, a :meth:`refresh`, a different
        smoothing or a fresh compiled view fall back to the full build.
        """
        compiled = network.compiled()
        # One metric name per transfer network: smoothing lives in the
        # freshness token, so changing it replaces the vector instead of
        # accumulating one entry per (uid, smoothing) pair on the graph.
        metric = f"popularity#{self._uid}"
        token = (self._version, smoothing)
        if compiled.has_metric(metric):
            current = compiled.metric_token(metric)
            if current == token:
                return metric
            if self._patch_compiled_metric(compiled, metric, current, smoothing):
                return metric
        costs = [
            self.edge_popularity_cost(edge.source, edge.target, smoothing)
            for edge in compiled.edge_records
        ]
        compiled.register_metric(metric, costs, token=token)
        return metric

    def _patch_compiled_metric(self, compiled, metric: str, current_token, smoothing: float) -> bool:
        """Patch a stale registered vector forward from the ingest journal.

        Returns ``False`` when incremental repair is not possible (unknown or
        differently-smoothed token, or journal entries missing for any
        version between the vector's and ours — e.g. after a refresh or past
        the journal window), in which case the caller recompiles in full.
        """
        if not isinstance(current_token, tuple) or len(current_token) != 2:
            return False
        old_version, old_smoothing = current_token
        if old_smoothing != smoothing or not isinstance(old_version, int):
            return False
        if old_version > self._version:
            return False
        pending = [(version, nodes) for version, nodes in self._ingest_journal if version > old_version]
        if len(pending) != self._version - old_version:
            return False
        dirty_nodes = set()
        for _, nodes in pending:
            dirty_nodes.update(nodes)
        indptr, index_of = compiled.indptr, compiled.index_of
        edge_records = compiled.edge_records
        entries = []
        for node in dirty_nodes:
            node_index = index_of.get(node)
            if node_index is None:
                continue  # path node absent from this compiled view
            for position in range(indptr[node_index], indptr[node_index + 1]):
                edge = edge_records[position]
                entries.append(
                    (position, self.edge_popularity_cost(edge.source, edge.target, smoothing))
                )
        compiled.patch_metric(metric, entries, token=(self._version, smoothing))
        return True

    def coverage(self) -> float:
        """Fraction of road-network edges traversed by at least one trajectory."""
        if self.network.edge_count == 0:
            return 0.0
        return len(self._edge_counts) / self.network.edge_count

    def hottest_edges(self, count: int = 10) -> List[Tuple[Tuple[int, int], int]]:
        """The ``count`` most traversed edges with their counts."""
        ordered = sorted(self._edge_counts.items(), key=lambda item: (-item[1], item[0]))
        return ordered[:count]


def path_support(store: TrajectoryStore, network: RoadNetwork, path: Sequence[int], radius_m: float = 300.0) -> int:
    """Number of historical trajectories whose od matches the path's endpoints."""
    origin = network.node_location(path[0])
    destination = network.node_location(path[-1])
    return store.support_between(origin, destination, radius_m)
