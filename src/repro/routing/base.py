"""Common interfaces for candidate-route sources."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import RoutingError
from ..roadnet.graph import RoadNetwork
from ..spatial import Point


@dataclass(frozen=True)
class RouteQuery:
    """A route recommendation request.

    Attributes
    ----------
    origin, destination:
        Road-network node ids of the requested endpoints.
    departure_time_s:
        Departure time of day in seconds since midnight.
    max_response_time_s:
        The user-specified longest acceptable answer delay (used by worker
        selection when the request reaches the crowd module).
    """

    origin: int
    destination: int
    departure_time_s: float = 9 * 3600.0
    max_response_time_s: float = 3_600.0

    def reversed(self) -> "RouteQuery":
        """Return the same query in the opposite direction."""
        return RouteQuery(
            origin=self.destination,
            destination=self.origin,
            departure_time_s=self.departure_time_s,
            max_response_time_s=self.max_response_time_s,
        )


@dataclass(frozen=True)
class CandidateRoute:
    """A route proposed by one source for one query.

    ``path`` is the node path on the road network; ``source`` names the
    producing algorithm ("shortest", "fastest", "MPR", "LDR", "MFP", ...);
    ``support`` is the number of historical trajectories backing the route
    (0 for web-service routes); ``metadata`` carries per-source diagnostics.
    """

    path: Tuple[int, ...]
    source: str
    support: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    def __init__(
        self,
        path: Sequence[int],
        source: str,
        support: int = 0,
        metadata: Optional[Dict[str, float]] = None,
    ):
        if len(path) < 2:
            raise RoutingError("a candidate route needs at least two nodes")
        object.__setattr__(self, "path", tuple(path))
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "support", int(support))
        object.__setattr__(self, "metadata", dict(metadata or {}))
        object.__setattr__(self, "_edge_signature", None)

    @property
    def origin(self) -> int:
        return self.path[0]

    @property
    def destination(self) -> int:
        return self.path[-1]

    def length_m(self, network: RoadNetwork) -> float:
        """Geometric length of the route on ``network``."""
        return network.path_length(self.path)

    def points(self, network: RoadNetwork) -> List[Point]:
        """Intersection coordinates along the route."""
        return network.path_points(self.path)

    def edge_set(self) -> set:
        """The set of directed edges the route uses (for similarity measures)."""
        return set(self.edge_signature())

    def edge_signature(self) -> frozenset:
        """The route's directed edge set as a cached frozenset.

        Similarity is computed many times per route (agreement checks compare
        every candidate pair; confidence scoring compares every candidate
        against every nearby verified truth), so the set is built once per
        route instead of once per comparison.  The path is immutable, which
        makes the cache safe.
        """
        signature = self._edge_signature
        if signature is None:
            signature = frozenset(zip(self.path, self.path[1:]))
            object.__setattr__(self, "_edge_signature", signature)
        return signature

    def similarity_to(self, other: "CandidateRoute") -> float:
        """Jaccard similarity of the two routes' edge sets.

        1.0 means identical edge usage, 0.0 means completely disjoint.  This
        is the agreement measure the TR module uses to decide whether
        candidate routes "agree with each other to a high degree".
        """
        mine = self.edge_signature()
        theirs = other.edge_signature()
        if not mine and not theirs:
            return 1.0
        union = mine | theirs
        if not union:
            return 1.0
        return len(mine & theirs) / len(union)


class RouteSource(abc.ABC):
    """Interface of every candidate-route producer."""

    #: Human-readable name recorded on produced routes.
    name: str = "source"

    @abc.abstractmethod
    def recommend(self, query: RouteQuery) -> CandidateRoute:
        """Return this source's best route for ``query``.

        Implementations raise :class:`~repro.exceptions.RoutingError` (or a
        subclass such as ``InsufficientSupportError``) when they cannot
        produce a route.
        """

    def recommend_or_none(self, query: RouteQuery) -> Optional[CandidateRoute]:
        """Like :meth:`recommend` but returns ``None`` instead of raising."""
        try:
            return self.recommend(query)
        except RoutingError:
            return None

    def prepare_batch(self, queries: Sequence[RouteQuery]) -> None:
        """Hook called once before a batch of queries is answered.

        Sources that amortise per-state work across queries (e.g. the MPR
        miner compiling its popularity cost vector) override this; the
        default is a no-op.  Implementations must not change what
        :meth:`recommend` returns for any individual query — batching is a
        performance channel, never a semantic one.
        """
