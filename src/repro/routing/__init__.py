"""Candidate-route sources.

The traditional-recommendation (TR) module of CrowdPlanner consolidates routes
from two families of sources:

* simulated web map services (shortest distance, fastest time), and
* popular-route mining algorithms over historical trajectories — MPR (Most
  Popular Route), LDR (Local Driver Route) and MFP (Most Frequent Path).
"""

from .base import CandidateRoute, RouteQuery, RouteSource
from .web_service import FastestRouteService, ShortestRouteService, AlternativeAwareService
from .popularity import TransferNetwork
from .mpr import MostPopularRouteMiner
from .ldr import LocalDriverRouteMiner
from .mfp import MostFrequentPathMiner

__all__ = [
    "CandidateRoute",
    "RouteQuery",
    "RouteSource",
    "FastestRouteService",
    "ShortestRouteService",
    "AlternativeAwareService",
    "TransferNetwork",
    "MostPopularRouteMiner",
    "LocalDriverRouteMiner",
    "MostFrequentPathMiner",
]
