"""MPR — Most Popular Route mining (Chen, Shen & Zhou, ICDE 2011 [4]).

The original algorithm builds a transfer network from historical trajectories
and defines route popularity through transition probabilities towards the
destination; the most popular route is the one maximising the product of
transition probabilities, found by a shortest-path search over
``-log(probability)`` costs.  As the paper notes, MPR "tends to have fewer
vertices": probability products favour short sequences of well-supported
transitions.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import InsufficientSupportError, RoutingError
from ..roadnet.graph import RoadEdge, RoadNetwork
from ..roadnet.shortest_path import dijkstra_path
from ..trajectory.storage import TrajectoryStore
from .base import CandidateRoute, RouteQuery, RouteSource
from .popularity import TransferNetwork


class MostPopularRouteMiner(RouteSource):
    """Mines the most popular route between two nodes from historical data.

    Parameters
    ----------
    network, store:
        Road network and historical-trajectory store.
    min_support:
        Minimum number of historical trajectories between the query's origin
        and destination areas for the result to be considered reliable; below
        this an :class:`InsufficientSupportError` is raised (the failure mode
        that motivates crowdsourcing in sparse regions).
    smoothing:
        Additive smoothing of transition probabilities.
    support_radius_m:
        Radius used when counting supporting trajectories around endpoints.
    use_compiled_costs:
        When true (the default) the popularity costs are compiled into a
        cached cost vector on the road network's
        :class:`~repro.roadnet.compiled.CompiledGraph` (keyed by the transfer
        network's version), so routing skips the per-relaxation Python
        closure.  ``False`` keeps the original closure path — the oracle the
        equivalence tests and benchmarks compare against.
    """

    name = "MPR"

    def __init__(
        self,
        network: RoadNetwork,
        store: TrajectoryStore,
        min_support: int = 3,
        smoothing: float = 0.1,
        support_radius_m: float = 300.0,
        transfer_network: Optional[TransferNetwork] = None,
        use_compiled_costs: bool = True,
    ):
        if min_support < 0:
            raise RoutingError("min_support must be non-negative")
        self.network = network
        self.store = store
        self.min_support = min_support
        self.smoothing = smoothing
        self.support_radius_m = support_radius_m
        self.transfer = transfer_network or TransferNetwork(network, store)
        self.use_compiled_costs = use_compiled_costs

    def _popularity_cost_spec(self):
        """The ``cost`` argument for the popularity search.

        The compiled path returns a registered metric name (cost vector and
        relaxation lists cached on the compiled graph); the oracle path
        returns the per-edge closure the original implementation used.
        """
        if self.use_compiled_costs:
            return self.transfer.compiled_cost_metric(self.network, self.smoothing)

        def popularity_cost(edge: RoadEdge) -> float:
            return self.transfer.edge_popularity_cost(edge.source, edge.target, self.smoothing)

        return popularity_cost

    def prepare_batch(self, queries) -> None:
        """Warm the compiled popularity metric before a query batch."""
        if self.use_compiled_costs:
            self.transfer.compiled_cost_metric(self.network, self.smoothing)

    def recommend(self, query: RouteQuery) -> CandidateRoute:
        origin_location = self.network.node_location(query.origin)
        destination_location = self.network.node_location(query.destination)
        support = self.store.support_between(
            origin_location, destination_location, self.support_radius_m
        )
        if support < self.min_support:
            raise InsufficientSupportError(
                query.origin, query.destination, support, self.min_support
            )

        path = dijkstra_path(
            self.network, query.origin, query.destination, cost=self._popularity_cost_spec()
        )
        return CandidateRoute(
            path=path,
            source=self.name,
            support=support,
            metadata={
                "length_m": self.network.path_length(path),
                "coverage": self.transfer.coverage(),
            },
        )
