"""Exception hierarchy for the CrowdPlanner reproduction.

Every error raised intentionally by the library derives from
:class:`CrowdPlannerError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class CrowdPlannerError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SpatialError(CrowdPlannerError):
    """Invalid geometry or spatial-index misuse."""


class RoadNetworkError(CrowdPlannerError):
    """Malformed road network or reference to a missing node / edge."""


class NoPathError(RoadNetworkError):
    """Raised when no path exists between the requested origin and destination."""

    def __init__(self, origin, destination, message: str | None = None):
        self.origin = origin
        self.destination = destination
        super().__init__(
            message
            or f"no path exists between node {origin!r} and node {destination!r}"
        )


class TrajectoryError(CrowdPlannerError):
    """Malformed trajectory data (empty, unsorted timestamps, off-network points)."""


class CalibrationError(TrajectoryError):
    """Anchor-based calibration could not map a route onto landmarks."""


class LandmarkError(CrowdPlannerError):
    """Invalid landmark definition or unknown landmark identifier."""


class RoutingError(CrowdPlannerError):
    """A candidate-route source failed to produce a route."""


class InsufficientSupportError(RoutingError):
    """A popular-route miner did not find enough historical trajectories.

    The paper motivates CrowdPlanner with exactly this failure mode: in sparse
    regions the "popular" route degenerates, so the miner must say so rather
    than return an arbitrary route.
    """

    def __init__(self, origin, destination, support: int, required: int):
        self.origin = origin
        self.destination = destination
        self.support = support
        self.required = required
        super().__init__(
            f"only {support} supporting trajectories between {origin!r} and "
            f"{destination!r}; {required} required"
        )


class TaskGenerationError(CrowdPlannerError):
    """Task generation failed (e.g. no discriminative landmark set exists)."""


class WorkerSelectionError(CrowdPlannerError):
    """Worker selection failed (e.g. no eligible worker satisfies the filters)."""


class TruthStoreError(CrowdPlannerError):
    """Invalid interaction with the verified-truth database."""


class ConfigurationError(CrowdPlannerError):
    """Invalid configuration value."""


class ServingError(CrowdPlannerError):
    """Invalid interaction with the recommendation service (closed service,
    unknown or already-collected ticket, full submission queue, dead pool)."""


class OverloadError(ServingError):
    """Submission shed by admission control: the pending queue is full or a
    requested deadline cannot be met at current throughput.  Raised by
    :meth:`RecommendationService.submit` *before* any side effect, so the
    caller may retry, back off, or route the batch elsewhere."""


class JournalError(ServingError):
    """Invalid interaction with the truth journal (unusable directory,
    incompatible codec, appending to a closed journal)."""


class WorkspaceManifestError(ServingError):
    """A workspace's on-disk manifest (``workspace.json``) is missing fields,
    corrupt, or not JSON at all.  Carries the workspace directory so an
    operator knows exactly which tenant's state to inspect."""

    def __init__(self, directory, message: str):
        self.directory = directory
        super().__init__(f"workspace manifest {str(directory)!r}: {message}")
