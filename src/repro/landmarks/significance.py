"""HITS-like landmark significance inference (Section III-A, reference [26]).

The paper infers ``l.s`` by "regarding the travellers as authorities,
landmarks as hubs, and check-ins/visits as hyperlinks" and running a HITS-like
algorithm.  This module implements exactly that bipartite mutual-reinforcement
iteration:

* a traveller's *authority* grows with the significance of landmarks they
  visit (experienced travellers visit the places worth visiting);
* a landmark's *hub* score (its significance) grows with the authority of the
  travellers who visit it.

Visits come from two sources, as in the paper: LBSN check-ins and taxi
trajectories passing near the landmark.  Scores are normalised to [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import LandmarkError
from .checkins import CheckIn
from .model import LandmarkCatalog

VisitEdge = Tuple[str, int]
"""A visit edge is (traveller key, landmark id); traveller keys are namespaced
strings so LBSN users and taxi drivers never collide."""


@dataclass
class SignificanceInference:
    """HITS-style mutual reinforcement over the traveller-landmark visit graph.

    Parameters
    ----------
    max_iterations:
        Upper bound on power iterations.
    tolerance:
        L1 convergence tolerance on the landmark score vector.
    """

    max_iterations: int = 100
    tolerance: float = 1e-9

    def scores_from_edges(self, edges: Sequence[VisitEdge]) -> Dict[int, float]:
        """Run the HITS iteration over raw visit edges.

        Returns a significance score in [0, 1] per landmark id appearing in
        ``edges``.  Duplicate edges reinforce (a traveller checking in twice
        counts twice).
        """
        if not edges:
            return {}
        travellers = sorted({traveller for traveller, _ in edges})
        landmarks = sorted({landmark for _, landmark in edges})
        traveller_index = {key: i for i, key in enumerate(travellers)}
        landmark_index = {key: j for j, key in enumerate(landmarks)}

        matrix = np.zeros((len(travellers), len(landmarks)))
        for traveller, landmark in edges:
            matrix[traveller_index[traveller], landmark_index[landmark]] += 1.0

        hub = np.ones(len(landmarks))
        for _ in range(self.max_iterations):
            new_authority = matrix @ hub
            new_hub = matrix.T @ new_authority
            norm_a = np.linalg.norm(new_authority)
            norm_h = np.linalg.norm(new_hub)
            if norm_a > 0:
                new_authority = new_authority / norm_a
            if norm_h > 0:
                new_hub = new_hub / norm_h
            if np.abs(new_hub - hub).sum() < self.tolerance:
                hub = new_hub
                break
            hub = new_hub

        top = hub.max()
        if top <= 0:
            return {landmark: 0.0 for landmark in landmarks}
        return {landmark: float(hub[landmark_index[landmark]] / top) for landmark in landmarks}

    def build_edges(
        self,
        checkins: Sequence[CheckIn] = (),
        taxi_visits: Mapping[int, Iterable[int]] = None,
    ) -> List[VisitEdge]:
        """Combine check-ins and taxi visits into a single visit-edge list.

        ``taxi_visits`` maps a driver id to the landmark ids their
        trajectories pass near.
        """
        edges: List[VisitEdge] = [
            (f"lbsn:{checkin.user_id}", checkin.landmark_id) for checkin in checkins
        ]
        if taxi_visits:
            for driver_id, landmark_ids in taxi_visits.items():
                for landmark_id in landmark_ids:
                    edges.append((f"taxi:{driver_id}", landmark_id))
        return edges


def infer_significance(
    catalog: LandmarkCatalog,
    checkins: Sequence[CheckIn] = (),
    taxi_visits: Optional[Mapping[int, Iterable[int]]] = None,
    floor: float = 0.02,
) -> LandmarkCatalog:
    """Return a new catalogue with significance scores inferred from visits.

    Landmarks never visited by anyone receive the small ``floor`` score (they
    exist on the map but nobody knows them) rather than exactly zero, so the
    landmark-selection objective can still rank them.
    """
    if not 0.0 <= floor <= 1.0:
        raise LandmarkError("floor must be in [0, 1]")
    inference = SignificanceInference()
    edges = inference.build_edges(checkins, taxi_visits or {})
    raw_scores = inference.scores_from_edges(edges)
    scores = {
        landmark.landmark_id: max(floor, raw_scores.get(landmark.landmark_id, 0.0))
        for landmark in catalog
    }
    return catalog.update_significances(scores)
