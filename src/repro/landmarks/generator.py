"""Synthetic landmark (POI) generation.

Landmarks are placed near road intersections — points of interest cluster on
the street network — with a mix of point POIs, line landmarks (named streets)
and region landmarks (suburbs / blocks).  Category and intrinsic
attractiveness are drawn from a skewed distribution so a few landmarks are
famous and most are obscure, mirroring real cities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import ConfigurationError
from ..roadnet.graph import RoadNetwork
from ..spatial import Point
from ..utils.rng import derive_rng
from .model import Landmark, LandmarkCatalog, LandmarkKind

_CATEGORIES = [
    ("landmark", 5.0),      # famous monuments — rare but hugely attractive
    ("mall", 3.0),
    ("transit_hub", 2.5),
    ("hospital", 2.0),
    ("university", 2.0),
    ("park", 1.5),
    ("restaurant", 1.0),
    ("office", 0.7),
    ("residential", 0.4),
]

_CATEGORY_WEIGHTS = [1, 3, 3, 4, 4, 8, 25, 22, 30]


@dataclass(frozen=True)
class LandmarkGeneratorConfig:
    """Parameters of the synthetic landmark catalogue."""

    count: int = 200
    region_fraction: float = 0.1
    line_fraction: float = 0.1
    max_offset_m: float = 80.0
    region_radius_m: float = 250.0
    line_half_length_m: float = 180.0
    seed: int = 17

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("count must be at least 1")
        if not 0 <= self.region_fraction <= 1 or not 0 <= self.line_fraction <= 1:
            raise ConfigurationError("fractions must be in [0, 1]")
        if self.region_fraction + self.line_fraction > 1:
            raise ConfigurationError("region_fraction + line_fraction must not exceed 1")


def generate_landmarks(
    network: RoadNetwork,
    config: Optional[LandmarkGeneratorConfig] = None,
) -> LandmarkCatalog:
    """Generate a landmark catalogue anchored to the road network.

    Returned landmarks have ``significance=0``; run significance inference
    (:mod:`repro.landmarks.significance`) to populate the scores.
    """
    config = config or LandmarkGeneratorConfig()
    rng = derive_rng(config.seed, "landmarks")
    node_ids = network.node_ids()
    if not node_ids:
        raise ConfigurationError("cannot generate landmarks on an empty network")

    catalog = LandmarkCatalog()
    for landmark_id in range(config.count):
        node_id = rng.choice(node_ids)
        base = network.node_location(node_id)
        anchor = Point(
            base.x + rng.uniform(-config.max_offset_m, config.max_offset_m),
            base.y + rng.uniform(-config.max_offset_m, config.max_offset_m),
        )
        kind, extent = _sample_kind(rng, config)
        category, _ = rng.choices(_CATEGORIES, weights=_CATEGORY_WEIGHTS, k=1)[0]
        catalog.add(
            Landmark(
                landmark_id=landmark_id,
                name=f"{category}-{landmark_id}",
                kind=kind,
                anchor=anchor,
                extent_m=extent,
                significance=0.0,
                category=category,
            )
        )
    return catalog


def intrinsic_attractiveness(landmark: Landmark) -> float:
    """Latent attractiveness used by the check-in simulator.

    Derived from the landmark category; callers never see this value directly
    — significance must be *inferred* from the visits it induces, exactly as
    the paper infers significance from check-in and taxi data.
    """
    weights: Dict[str, float] = {name: weight for name, weight in _CATEGORIES}
    return weights.get(landmark.category, 1.0)


def _sample_kind(rng: random.Random, config: LandmarkGeneratorConfig):
    roll = rng.random()
    if roll < config.region_fraction:
        return LandmarkKind.REGION, config.region_radius_m
    if roll < config.region_fraction + config.line_fraction:
        return LandmarkKind.LINE, config.line_half_length_m
    return LandmarkKind.POINT, 0.0
