"""Landmark substrate: landmark model, synthetic POIs, check-ins and significance inference."""

from .model import Landmark, LandmarkCatalog, LandmarkKind
from .generator import LandmarkGeneratorConfig, generate_landmarks
from .checkins import CheckIn, CheckInSimulator, CheckInSimulatorConfig
from .significance import SignificanceInference, infer_significance

__all__ = [
    "Landmark",
    "LandmarkCatalog",
    "LandmarkKind",
    "LandmarkGeneratorConfig",
    "generate_landmarks",
    "CheckIn",
    "CheckInSimulator",
    "CheckInSimulatorConfig",
    "SignificanceInference",
    "infer_significance",
]
