"""Landmark data model.

Definition 2 of the paper: *a landmark is a geographical object in the space,
which is stable and independent of the recommended routes; it can be a point
(POI), a line (street) or a region (block, suburb)*.  Every landmark also
carries a significance score ``l.s`` in [0, 1], inferred from check-ins and
taxi visits (Section III-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional

from ..exceptions import LandmarkError
from ..spatial import GridIndex, Point


class LandmarkKind(enum.Enum):
    """The three landmark shapes the paper distinguishes."""

    POINT = "point"
    LINE = "line"
    REGION = "region"


@dataclass(frozen=True)
class Landmark:
    """A named geographical anchor.

    Attributes
    ----------
    landmark_id:
        Unique identifier.
    name:
        Human-readable name shown in crowd questions ("do you prefer the
        route passing <name>?").
    kind:
        Point, line or region.
    anchor:
        Representative point (the POI itself, a line's midpoint, a region's
        centroid).
    extent_m:
        Spatial extent: 0 for points, half-length for lines, radius for
        regions.  A route "passes" the landmark if it comes within
        ``extent_m`` plus the calibrator's attach radius.
    significance:
        ``l.s`` — how widely known the landmark is, in [0, 1].
    category:
        POI category (mall, hospital, park, ...), used by check-in simulation
        to skew attractiveness.
    """

    landmark_id: int
    name: str
    kind: LandmarkKind
    anchor: Point
    extent_m: float = 0.0
    significance: float = 0.0
    category: str = "generic"

    def __post_init__(self) -> None:
        if self.extent_m < 0:
            raise LandmarkError("extent_m must be non-negative")
        if not 0.0 <= self.significance <= 1.0:
            raise LandmarkError("significance must lie in [0, 1]")

    def with_significance(self, significance: float) -> "Landmark":
        """Return a copy with a new significance score."""
        return replace(self, significance=float(significance))


class LandmarkCatalog:
    """An id-keyed, spatially indexed collection of landmarks."""

    def __init__(self, landmarks: Optional[Iterable[Landmark]] = None, cell_size: float = 400.0):
        self._landmarks: Dict[int, Landmark] = {}
        self._index: GridIndex[int] = GridIndex(cell_size=cell_size)
        self._version = 0
        if landmarks:
            for landmark in landmarks:
                self.add(landmark)

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation.

        Consumers that precompute neighbourhood structures over the catalogue
        (e.g. the familiarity model's accumulation weights) cache against this
        counter, mirroring :attr:`repro.roadnet.graph.RoadNetwork.version`.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._landmarks)

    def __iter__(self) -> Iterator[Landmark]:
        return iter(self._landmarks.values())

    def __contains__(self, landmark_id: int) -> bool:
        return landmark_id in self._landmarks

    def add(self, landmark: Landmark) -> None:
        """Add or replace a landmark."""
        self._version += 1
        self._landmarks[landmark.landmark_id] = landmark
        self._index.insert(landmark.landmark_id, landmark.anchor)

    def get(self, landmark_id: int) -> Landmark:
        try:
            return self._landmarks[landmark_id]
        except KeyError:
            raise LandmarkError(f"unknown landmark id {landmark_id}") from None

    def ids(self) -> List[int]:
        return list(self._landmarks)

    def all(self) -> List[Landmark]:
        return list(self._landmarks.values())

    def significance_of(self, landmark_id: int) -> float:
        """``l.s`` of a landmark."""
        return self.get(landmark_id).significance

    def nearest(self, point: Point, max_radius: Optional[float] = None) -> Optional[Landmark]:
        """The landmark whose anchor is closest to ``point``."""
        result = self._index.nearest(point, max_radius=max_radius)
        if result is None:
            return None
        return self._landmarks[result[0]]

    def within_radius(self, point: Point, radius: float) -> List[Landmark]:
        """Landmarks whose anchor lies within ``radius`` of ``point``."""
        return [self._landmarks[lid] for lid, _ in self._index.within_radius(point, radius)]

    def update_significances(self, scores: Dict[int, float]) -> "LandmarkCatalog":
        """Return a new catalogue with significance scores replaced from ``scores``.

        Landmarks missing from ``scores`` keep their current value.
        """
        updated = LandmarkCatalog()
        for landmark in self:
            if landmark.landmark_id in scores:
                updated.add(landmark.with_significance(scores[landmark.landmark_id]))
            else:
                updated.add(landmark)
        return updated

    def top_by_significance(self, count: int) -> List[Landmark]:
        """The ``count`` most significant landmarks, ties broken by id."""
        ordered = sorted(self, key=lambda lm: (-lm.significance, lm.landmark_id))
        return ordered[:count]
