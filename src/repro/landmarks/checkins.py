"""Location-based social network (LBSN) check-in simulation.

The paper infers landmark significance from two large datasets: online
check-in records of an LBSN and taxi trajectories.  We cannot ship the real
check-in dataset, so this module simulates one: synthetic users check in at
landmarks with probability proportional to the landmark's latent
attractiveness and inversely related to its distance from the user's home.
The simulation only exposes the resulting (user, landmark) visit records —
significance still has to be *inferred* from them downstream, preserving the
paper's pipeline shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..spatial import BoundingBox, Point
from ..utils.rng import derive_rng
from ..utils.stats import weighted_choice
from .generator import intrinsic_attractiveness
from .model import LandmarkCatalog


@dataclass(frozen=True)
class CheckIn:
    """One check-in event: a user visited a landmark at a time of day."""

    user_id: int
    landmark_id: int
    time_of_day_s: float


@dataclass(frozen=True)
class CheckInSimulatorConfig:
    """Parameters of the synthetic check-in workload."""

    num_users: int = 150
    checkins_per_user: int = 30
    distance_decay_m: float = 4_000.0
    travel_probability: float = 0.2
    seed: int = 19

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError("num_users must be at least 1")
        if self.checkins_per_user < 0:
            raise ConfigurationError("checkins_per_user must be non-negative")
        if self.distance_decay_m <= 0:
            raise ConfigurationError("distance_decay_m must be positive")
        if not 0 <= self.travel_probability <= 1:
            raise ConfigurationError("travel_probability must be in [0, 1]")


class CheckInSimulator:
    """Generates check-ins of synthetic LBSN users over a landmark catalogue."""

    def __init__(
        self,
        catalog: LandmarkCatalog,
        bounding_box: BoundingBox,
        config: Optional[CheckInSimulatorConfig] = None,
    ):
        if len(catalog) == 0:
            raise ConfigurationError("cannot simulate check-ins without landmarks")
        self.catalog = catalog
        self.bounding_box = bounding_box
        self.config = config or CheckInSimulatorConfig()

    def generate_user_homes(self) -> Dict[int, Point]:
        """Sample a home location for each synthetic LBSN user."""
        rng = derive_rng(self.config.seed, "checkin-homes")
        homes: Dict[int, Point] = {}
        for user_id in range(self.config.num_users):
            homes[user_id] = Point(
                rng.uniform(self.bounding_box.min_x, self.bounding_box.max_x),
                rng.uniform(self.bounding_box.min_y, self.bounding_box.max_y),
            )
        return homes

    def generate(self, homes: Optional[Dict[int, Point]] = None) -> List[CheckIn]:
        """Generate the check-in dataset.

        For each check-in the user either behaves locally (attractiveness
        decayed by distance from home) or is "travelling" and picks purely by
        attractiveness; famous landmarks therefore draw visitors from the
        whole city while ordinary ones draw only locals — the asymmetry the
        HITS-style inference needs to separate significance levels.
        """
        homes = homes or self.generate_user_homes()
        rng = derive_rng(self.config.seed, "checkins")
        landmarks = self.catalog.all()
        attractiveness = [intrinsic_attractiveness(lm) for lm in landmarks]

        checkins: List[CheckIn] = []
        for user_id, home in homes.items():
            for _ in range(self.config.checkins_per_user):
                if rng.random() < self.config.travel_probability:
                    weights = list(attractiveness)
                else:
                    weights = [
                        a * _distance_decay(home, lm.anchor, self.config.distance_decay_m)
                        for a, lm in zip(attractiveness, landmarks)
                    ]
                landmark = weighted_choice(landmarks, weights, rng)
                checkins.append(
                    CheckIn(
                        user_id=user_id,
                        landmark_id=landmark.landmark_id,
                        time_of_day_s=rng.uniform(7.0, 23.0) * 3600.0,
                    )
                )
        return checkins

    @staticmethod
    def visit_counts(checkins: Sequence[CheckIn]) -> Dict[int, int]:
        """Number of check-ins per landmark."""
        counts: Dict[int, int] = {}
        for checkin in checkins:
            counts[checkin.landmark_id] = counts.get(checkin.landmark_id, 0) + 1
        return counts


def _distance_decay(home: Point, anchor: Point, decay_m: float) -> float:
    distance = home.distance_to(anchor)
    return 1.0 / (1.0 + distance / decay_m)
