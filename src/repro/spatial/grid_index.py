"""A uniform-grid spatial index over point-keyed items.

The index answers two queries the rest of the library needs constantly:
``nearest(point)`` (map matching, anchor calibration) and
``within_radius(point, r)`` (worker knowledge radius, truth reuse matching).
A uniform grid is simple, predictable and fast enough for city-scale data.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

from ..exceptions import SpatialError
from .point import Point

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Maps items to planar locations and supports nearest / radius queries."""

    def __init__(self, cell_size: float = 500.0):
        if cell_size <= 0:
            raise SpatialError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[Tuple[Point, T]]] = defaultdict(list)
        self._items: Dict[T, Point] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._items

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (int(math.floor(point.x / self.cell_size)), int(math.floor(point.y / self.cell_size)))

    def insert(self, item: T, location: Point) -> None:
        """Insert ``item`` at ``location``; re-inserting an item moves it."""
        if item in self._items:
            self.remove(item)
        self._items[item] = location
        self._cells[self._cell_of(location)].append((location, item))

    def insert_many(self, entries: Iterable[Tuple[T, Point]]) -> None:
        for item, location in entries:
            self.insert(item, location)

    def remove(self, item: T) -> None:
        """Remove ``item``; raises ``KeyError`` if absent."""
        location = self._items.pop(item)
        cell = self._cell_of(location)
        self._cells[cell] = [(p, i) for p, i in self._cells[cell] if i != item]
        if not self._cells[cell]:
            del self._cells[cell]

    def location_of(self, item: T) -> Point:
        """Return the stored location of ``item``."""
        return self._items[item]

    def items(self) -> List[T]:
        return list(self._items)

    def within_radius(self, center: Point, radius: float) -> List[Tuple[T, float]]:
        """Return ``(item, distance)`` pairs within ``radius`` metres of ``center``.

        Results are sorted by increasing distance.
        """
        if radius < 0:
            raise SpatialError("radius must be non-negative")
        reach = int(math.ceil(radius / self.cell_size))
        center_cell = self._cell_of(center)
        found: List[Tuple[T, float]] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                cell = (center_cell[0] + dx, center_cell[1] + dy)
                for location, item in self._cells.get(cell, ()):
                    distance = center.distance_to(location)
                    if distance <= radius:
                        found.append((item, distance))
        found.sort(key=lambda pair: (pair[1], str(pair[0])))
        return found

    def nearest(self, center: Point, max_radius: Optional[float] = None) -> Optional[Tuple[T, float]]:
        """Return the nearest item and its distance, or ``None`` if empty.

        If ``max_radius`` is given, items farther than it are ignored.

        ``within_radius`` inspects every cell overlapping the query square, so
        as soon as it returns a non-empty result its closest entry is the
        global nearest neighbour — anything closer would also have been inside
        the same radius.
        """
        if not self._items:
            return None
        limit = float("inf") if max_radius is None else float(max_radius)
        radius = self.cell_size
        # Cap the doubling search at the farthest indexed item so a query far
        # outside the indexed area degrades to a single linear-equivalent pass
        # instead of growing the radius forever.
        farthest = max(center.distance_to(location) for location in self._items.values())
        while True:
            effective = min(radius, limit)
            candidates = self.within_radius(center, effective)
            if candidates:
                return candidates[0]
            if effective >= limit or radius >= farthest:
                return None
            radius *= 2

    def k_nearest(self, center: Point, k: int) -> List[Tuple[T, float]]:
        """Return up to ``k`` nearest items as ``(item, distance)`` pairs."""
        if k <= 0:
            return []
        if not self._items:
            return []
        # Grow the radius until at least k items are inside, then trim.
        radius = self.cell_size
        max_extent = self.cell_size * (len(self._cells) + 2) + 1.0
        while True:
            candidates = self.within_radius(center, radius)
            if len(candidates) >= k or radius > max_extent:
                break
            radius *= 2
        if len(candidates) < k:
            candidates = [
                (item, center.distance_to(location))
                for item, location in self._items.items()
            ]
            candidates.sort(key=lambda pair: (pair[1], str(pair[0])))
        return candidates[:k]
