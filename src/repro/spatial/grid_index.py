"""A uniform-grid spatial index over point-keyed items.

The index answers two queries the rest of the library needs constantly:
``nearest(point)`` (map matching, anchor calibration) and
``within_radius(point, r)`` (worker knowledge radius, truth reuse matching).
A uniform grid is simple, predictable and fast enough for city-scale data.

Coordinates live in flat, append-only numpy buffers; each grid cell keeps the
*slots* (insertion sequence numbers) of its items, so radius queries gather
candidate slots and compute all distances in one vectorized pass.  Tiny
candidate sets skip numpy entirely — scalar math beats array overhead below a
handful of points.  Results are deterministic: ties at equal distance break on
insertion order (the slot number captured at insert time), never on string
renderings of the items.
"""

from __future__ import annotations

import math
from typing import Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

import numpy as np

from ..exceptions import SpatialError
from .point import Point

T = TypeVar("T")

#: Below this many candidates a scalar loop outruns numpy dispatch overhead.
_VECTORIZE_THRESHOLD = 16


class GridIndex(Generic[T]):
    """Maps items to planar locations and supports nearest / radius queries."""

    def __init__(self, cell_size: float = 500.0):
        if cell_size <= 0:
            raise SpatialError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._item_slot: Dict[T, int] = {}
        self._slot_item: List[T] = []
        self._slot_point: List[Point] = []
        self._xs = np.empty(64, dtype=np.float64)
        self._ys = np.empty(64, dtype=np.float64)
        # Bounding box over live items: expanded in O(1) on insert, marked
        # stale on remove and recomputed lazily.  ``nearest`` uses it to cap
        # its doubling search without the former O(n) farthest-item scan.
        self._bbox: Optional[Tuple[float, float, float, float]] = None
        self._bbox_stale = False

    def __len__(self) -> int:
        return len(self._item_slot)

    def __contains__(self, item: T) -> bool:
        return item in self._item_slot

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (int(math.floor(point.x / self.cell_size)), int(math.floor(point.y / self.cell_size)))

    def cell_of(self, point: Point) -> Tuple[int, int]:
        """The grid-cell coordinates ``point`` falls in.

        Exposed so consumers that partition data by spatial cell (the truth
        store's destination partitioning, the planner's shard planning) can
        quantise with exactly the index's own boundary decisions.
        """
        return self._cell_of(point)

    # --------------------------------------------------------------- updates
    def insert(self, item: T, location: Point) -> None:
        """Insert ``item`` at ``location``; re-inserting an item moves it."""
        if item in self._item_slot:
            self.remove(item)
        slot = len(self._slot_item)
        if slot == len(self._xs):
            self._xs = np.concatenate([self._xs, np.empty_like(self._xs)])
            self._ys = np.concatenate([self._ys, np.empty_like(self._ys)])
        self._xs[slot] = location.x
        self._ys[slot] = location.y
        self._slot_item.append(item)
        self._slot_point.append(location)
        self._item_slot[item] = slot
        self._cells.setdefault(self._cell_of(location), []).append(slot)
        if self._bbox is None:
            self._bbox = (location.x, location.x, location.y, location.y)
        else:
            min_x, max_x, min_y, max_y = self._bbox
            self._bbox = (
                min(min_x, location.x),
                max(max_x, location.x),
                min(min_y, location.y),
                max(max_y, location.y),
            )

    def insert_many(self, entries: Iterable[Tuple[T, Point]]) -> None:
        for item, location in entries:
            self.insert(item, location)

    def remove(self, item: T) -> None:
        """Remove ``item``; raises ``KeyError`` if absent."""
        slot = self._item_slot.pop(item)
        cell = self._cell_of(self._slot_point[slot])
        slots = self._cells[cell]
        slots.remove(slot)
        if not slots:
            del self._cells[cell]
        self._bbox_stale = True
        # Dead slots (removed or moved items) are tombstones in the flat
        # buffers; compact once they outnumber the live items so churny
        # workloads stay O(live) in memory (amortised O(1) per removal).
        if len(self._slot_item) > 64 and len(self._slot_item) > 2 * len(self._item_slot):
            self._compact()

    def _compact(self) -> None:
        """Renumber live slots densely, preserving relative insertion order
        (slot order is the tie-break, so rankings are unchanged)."""
        live = sorted(self._item_slot.values())
        self._xs[: len(live)] = self._xs[live]
        self._ys[: len(live)] = self._ys[live]
        self._slot_item = [self._slot_item[slot] for slot in live]
        self._slot_point = [self._slot_point[slot] for slot in live]
        self._item_slot = {item: i for i, item in enumerate(self._slot_item)}
        new_slot = {old: i for i, old in enumerate(live)}
        for slots in self._cells.values():
            slots[:] = [new_slot[slot] for slot in slots]

    # ----------------------------------------------------------------- reads
    def location_of(self, item: T) -> Point:
        """Return the stored location of ``item``."""
        return self._slot_point[self._item_slot[item]]

    def items(self) -> List[T]:
        return list(self._item_slot)

    def items_in_cells(self, cells: Iterable[Tuple[int, int]]) -> List[T]:
        """Items whose locations fall in the given grid cells, in insertion order.

        This is the partitioning read path (truth-store destination
        partitions): O(matching items), not O(index); duplicate cells in the
        input are harmless (each item lives in exactly one cell and the cell
        set is deduplicated first).
        """
        slots: List[int] = []
        for cell in set(cells):
            slots.extend(self._cells.get(cell, ()))
        slots.sort()
        return [self._slot_item[slot] for slot in slots]

    # --------------------------------------------------------------- queries
    def _candidate_slots(self, center: Point, radius: float) -> List[int]:
        reach = int(math.ceil(radius / self.cell_size))
        center_cell = self._cell_of(center)
        cells = self._cells
        if len(cells) <= (2 * reach + 1) ** 2:
            # Query square covers most of the index: walking the populated
            # cells is cheaper than enumerating the square.
            cx_lo, cx_hi = center_cell[0] - reach, center_cell[0] + reach
            cy_lo, cy_hi = center_cell[1] - reach, center_cell[1] + reach
            found: List[int] = []
            for (cx, cy), slots in cells.items():
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi:
                    found.extend(slots)
            return found
        found = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                slots = cells.get((center_cell[0] + dx, center_cell[1] + dy))
                if slots:
                    found.extend(slots)
        return found

    def _ranked_within(self, slots: List[int], center: Point, radius: float) -> List[Tuple[T, float]]:
        """``(item, distance)`` for candidate slots within ``radius``, sorted
        by increasing distance with insertion-order tie-breaking."""
        slot_item = self._slot_item
        # In-or-out decisions must agree exactly with ``Point.distance_to``
        # (math.hypot): callers mix index queries with direct distance checks,
        # so an ulp of disagreement at the radius boundary would make them
        # contradict each other.  The scalar branch uses math.hypot directly;
        # the vectorized branch uses np.hypot — which may differ from
        # math.hypot in the last ulp — and re-decides the few entries within
        # an ulp-band of the boundary with math.hypot.
        if len(slots) < _VECTORIZE_THRESHOLD:
            hypot = math.hypot
            cx, cy = center.x, center.y
            xs, ys = self._xs, self._ys
            scored = []
            for slot in slots:
                distance = hypot(xs[slot] - cx, ys[slot] - cy)
                if distance <= radius:
                    scored.append((distance, slot))
            scored.sort()
            return [(slot_item[slot], float(distance)) for distance, slot in scored]
        index = np.asarray(slots, dtype=np.intp)
        dx = self._xs[index] - center.x
        dy = self._ys[index] - center.y
        distances = np.hypot(dx, dy)
        inside = distances <= radius
        if math.isfinite(radius):
            tolerance = 4.0 * np.finfo(np.float64).eps * max(radius, 1.0)
            for j in np.nonzero(np.abs(distances - radius) <= tolerance)[0]:
                exact = math.hypot(float(dx[j]), float(dy[j]))
                distances[j] = exact
                inside[j] = exact <= radius
        index = index[inside]
        distances = distances[inside]
        order = np.lexsort((index, distances))
        return [(slot_item[index[i]], float(distances[i])) for i in order]

    def within_radius(self, center: Point, radius: float) -> List[Tuple[T, float]]:
        """Return ``(item, distance)`` pairs within ``radius`` metres of ``center``.

        Results are sorted by increasing distance; ties break on insertion
        order, so the ranking is deterministic for any item type.
        """
        if radius < 0:
            raise SpatialError("radius must be non-negative")
        if not self._item_slot:
            return []
        return self._ranked_within(self._candidate_slots(center, radius), center, radius)

    def _farthest_possible(self, center: Point) -> float:
        """Upper bound on the distance from ``center`` to any indexed item."""
        if self._bbox_stale:
            live = np.fromiter(self._item_slot.values(), dtype=np.intp, count=len(self._item_slot))
            xs, ys = self._xs[live], self._ys[live]
            self._bbox = (float(xs.min()), float(xs.max()), float(ys.min()), float(ys.max()))
            self._bbox_stale = False
        min_x, max_x, min_y, max_y = self._bbox  # type: ignore[misc]
        return math.hypot(
            max(abs(center.x - min_x), abs(center.x - max_x)),
            max(abs(center.y - min_y), abs(center.y - max_y)),
        )

    def nearest(self, center: Point, max_radius: Optional[float] = None) -> Optional[Tuple[T, float]]:
        """Return the nearest item and its distance, or ``None`` if empty.

        If ``max_radius`` is given, items farther than it are ignored.

        ``within_radius`` inspects every cell overlapping the query square, so
        as soon as it returns a non-empty result its closest entry is the
        global nearest neighbour — anything closer would also have been inside
        the same radius.  The doubling search is capped by the bounding box of
        the indexed items (maintained incrementally), so a query far outside
        the indexed area degrades to a single pass instead of growing the
        radius forever.
        """
        if not self._item_slot:
            return None
        limit = float("inf") if max_radius is None else float(max_radius)
        radius = self.cell_size
        farthest = self._farthest_possible(center)
        while True:
            effective = min(radius, limit)
            candidates = self.within_radius(center, effective)
            if candidates:
                return candidates[0]
            if effective >= limit or radius >= farthest:
                return None
            radius *= 2

    def k_nearest(self, center: Point, k: int) -> List[Tuple[T, float]]:
        """Return up to ``k`` nearest items as ``(item, distance)`` pairs."""
        if k <= 0:
            return []
        if not self._item_slot:
            return []
        # Grow the radius until at least k items are inside, then trim.
        radius = self.cell_size
        max_extent = self.cell_size * (len(self._cells) + 2) + 1.0
        while True:
            candidates = self.within_radius(center, radius)
            if len(candidates) >= k or radius > max_extent:
                break
            radius *= 2
        if len(candidates) < k:
            candidates = self._ranked_within(
                list(self._item_slot.values()), center, float("inf")
            )
        return candidates[:k]
