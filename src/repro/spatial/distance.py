"""Point-to-segment projection and route-length helpers.

Map matching and anchor-based calibration both reduce to "find the nearest
road segment / landmark to this point", which these helpers implement.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .point import Point


def project_point_on_segment(point: Point, start: Point, end: Point) -> Tuple[Point, float]:
    """Project ``point`` onto segment ``start``-``end``.

    Returns the closest point on the segment and the fractional position
    ``t`` in ``[0, 1]`` along the segment (0 at ``start``, 1 at ``end``).
    """
    dx = end.x - start.x
    dy = end.y - start.y
    segment_length_sq = dx * dx + dy * dy
    if segment_length_sq == 0.0:
        return start, 0.0
    t = ((point.x - start.x) * dx + (point.y - start.y) * dy) / segment_length_sq
    t = max(0.0, min(1.0, t))
    return Point(start.x + t * dx, start.y + t * dy), t


def point_to_segment_distance(point: Point, start: Point, end: Point) -> float:
    """Shortest distance from ``point`` to the segment ``start``-``end``."""
    projection, _ = project_point_on_segment(point, start, end)
    return point.distance_to(projection)


def route_length(points: Sequence[Point]) -> float:
    """Total polyline length of a sequence of points, in metres."""
    total = 0.0
    for first, second in zip(points, points[1:]):
        total += first.distance_to(second)
    return total


def discrete_frechet_distance(a: Sequence[Point], b: Sequence[Point]) -> float:
    """Discrete Fréchet distance between two point sequences.

    Used as a strict geometric dissimilarity between candidate routes when
    analysing how much different recommendation sources disagree.
    """
    if not a or not b:
        raise ValueError("Fréchet distance of an empty sequence is undefined")
    n, m = len(a), len(b)
    memo = [[-1.0] * m for _ in range(n)]
    memo[0][0] = a[0].distance_to(b[0])
    for i in range(1, n):
        memo[i][0] = max(memo[i - 1][0], a[i].distance_to(b[0]))
    for j in range(1, m):
        memo[0][j] = max(memo[0][j - 1], a[0].distance_to(b[j]))
    for i in range(1, n):
        for j in range(1, m):
            best_previous = min(memo[i - 1][j], memo[i][j - 1], memo[i - 1][j - 1])
            memo[i][j] = max(best_previous, a[i].distance_to(b[j]))
    return memo[n - 1][m - 1]
