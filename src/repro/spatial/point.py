"""Planar points and distance metrics.

The synthetic cities in this reproduction live on a local planar coordinate
system measured in metres (``x`` east, ``y`` north).  A haversine helper is
provided for users who feed real latitude/longitude GPS data instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point in metres.

    Points are hashable and ordered lexicographically so they can be used as
    dictionary keys and sorted deterministically.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in metres to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def euclidean_distance(a: Point, b: Point) -> float:
    """Euclidean distance between two planar points, in metres."""
    return a.distance_to(b)


def haversine_distance(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two WGS-84 coordinates.

    Only used when callers supply real latitude/longitude data; synthetic
    scenarios use planar coordinates throughout.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def centroid(points: Iterable[Point]) -> Point:
    """Return the centroid of a non-empty collection of points."""
    xs = []
    ys = []
    for point in points:
        xs.append(point.x)
        ys.append(point.y)
    if not xs:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(sum(xs) / len(xs), sum(ys) / len(ys))
