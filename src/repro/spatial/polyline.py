"""Polylines: ordered point sequences with sampling and resampling helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..exceptions import SpatialError
from .bbox import BoundingBox
from .distance import route_length
from .point import Point


@dataclass(frozen=True)
class Polyline:
    """An immutable ordered sequence of at least two points."""

    points: Tuple[Point, ...]

    def __init__(self, points: Sequence[Point]):
        if len(points) < 2:
            raise SpatialError("a polyline needs at least two points")
        object.__setattr__(self, "points", tuple(points))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __getitem__(self, index):
        return self.points[index]

    @property
    def start(self) -> Point:
        return self.points[0]

    @property
    def end(self) -> Point:
        return self.points[-1]

    @property
    def length(self) -> float:
        """Total length in metres."""
        return route_length(self.points)

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.from_points(self.points)

    def reversed(self) -> "Polyline":
        return Polyline(tuple(reversed(self.points)))

    def point_at_fraction(self, fraction: float) -> Point:
        """Return the point located at ``fraction`` of the total length.

        ``fraction`` is clamped to ``[0, 1]``.
        """
        fraction = max(0.0, min(1.0, fraction))
        target = fraction * self.length
        travelled = 0.0
        for first, second in zip(self.points, self.points[1:]):
            segment = first.distance_to(second)
            if travelled + segment >= target and segment > 0:
                remainder = (target - travelled) / segment
                return Point(
                    first.x + remainder * (second.x - first.x),
                    first.y + remainder * (second.y - first.y),
                )
            travelled += segment
        return self.end

    def resample(self, spacing: float) -> List[Point]:
        """Return points sampled every ``spacing`` metres along the polyline.

        The first and last points are always included.  Used by the GPS
        trajectory generator to turn a road path into a pinged trajectory.
        """
        if spacing <= 0:
            raise SpatialError("spacing must be positive")
        total = self.length
        if total == 0:
            return [self.start, self.end]
        count = max(1, int(total // spacing))
        samples = [self.point_at_fraction(i / count) for i in range(count)]
        samples.append(self.end)
        return samples
