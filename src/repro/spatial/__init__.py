"""Spatial primitives: points, distances, bounding boxes, polylines and a grid index."""

from .point import Point, euclidean_distance, haversine_distance
from .bbox import BoundingBox
from .polyline import Polyline
from .grid_index import GridIndex
from .distance import (
    point_to_segment_distance,
    project_point_on_segment,
    route_length,
)

__all__ = [
    "Point",
    "euclidean_distance",
    "haversine_distance",
    "BoundingBox",
    "Polyline",
    "GridIndex",
    "point_to_segment_distance",
    "project_point_on_segment",
    "route_length",
]
