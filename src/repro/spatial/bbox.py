"""Axis-aligned bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..exceptions import SpatialError
from .point import Point


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]`` in metres."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise SpatialError(
                "bounding box minimum corner must not exceed maximum corner"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """Return the tightest bounding box containing ``points``."""
        points = list(points)
        if not points:
            raise SpatialError("cannot build a bounding box from zero points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    @classmethod
    def around(cls, center: Point, radius: float) -> "BoundingBox":
        """Return the square box of half-width ``radius`` centred on ``center``."""
        if radius < 0:
            raise SpatialError("radius must be non-negative")
        return cls(center.x - radius, center.y - radius, center.x + radius, center.y + radius)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """True if ``point`` lies inside or on the boundary of the box."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        """True if this box shares any area (or boundary) with ``other``."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` metres on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Return the smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )
