"""One-call construction of a complete CrowdPlanner scenario.

A :class:`Scenario` bundles everything an experiment needs:

* a synthetic city road network;
* a landmark catalogue with significance inferred from simulated check-ins
  and taxi visits;
* a historical trajectory store produced by preference-driven drivers;
* candidate-route sources (shortest, fastest, MPR, LDR, MFP);
* a worker pool and a simulated crowd whose knowledge mirrors the city;
* the ground-truth driver-preferred route per od-pair, used both by the crowd
  simulation and by the experiment metrics.

Experiments and examples should go through :func:`build_scenario` so every
run is reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import DEFAULT_CONFIG, PlannerConfig
from ..core.planner import CrowdPlanner
from ..core.worker import WorkerPool
from ..crowd.behavior import AnswerBehaviorModel
from ..crowd.population import WorkerPopulationConfig, generate_worker_pool
from ..crowd.simulator import SimulatedCrowd
from ..exceptions import ConfigurationError, NoPathError
from ..landmarks.checkins import CheckInSimulator, CheckInSimulatorConfig
from ..landmarks.generator import LandmarkGeneratorConfig, generate_landmarks
from ..landmarks.model import LandmarkCatalog
from ..landmarks.significance import infer_significance
from ..roadnet.generators import GridCityConfig, generate_grid_city
from ..roadnet.graph import RoadNetwork
from ..roadnet.travel_time import TravelTimeModel
from ..routing.base import RouteQuery, RouteSource
from ..routing.ldr import LocalDriverRouteMiner
from ..routing.mfp import MostFrequentPathMiner
from ..routing.mpr import MostPopularRouteMiner
from ..routing.web_service import (
    AlternativeAwareService,
    FastestRouteService,
    ShortestRouteService,
)
from ..trajectory.calibration import AnchorCalibrator
from ..trajectory.generator import TrajectoryGenerator, TrajectoryGeneratorConfig
from ..trajectory.storage import TrajectoryStore
from ..utils.rng import derive_rng


@dataclass(frozen=True)
class SyntheticCityConfig:
    """Knobs of the end-to-end scenario (kept deliberately small for tests)."""

    rows: int = 14
    cols: int = 14
    block_size_m: float = 220.0
    num_landmarks: int = 150
    num_drivers: int = 50
    trips_per_driver: int = 20
    num_hot_pairs: int = 30
    num_workers: int = 60
    min_support: int = 3
    seed: int = 7
    planner_config: PlannerConfig = DEFAULT_CONFIG

    def __post_init__(self) -> None:
        if self.rows < 4 or self.cols < 4:
            raise ConfigurationError("the scenario city needs at least 4x4 intersections")


@dataclass
class Scenario:
    """A fully built synthetic CrowdPlanner deployment."""

    config: SyntheticCityConfig
    network: RoadNetwork
    catalog: LandmarkCatalog
    calibrator: AnchorCalibrator
    store: TrajectoryStore
    sources: List[RouteSource]
    worker_pool: WorkerPool
    crowd: SimulatedCrowd
    trajectory_generator: TrajectoryGenerator
    travel_time_model: TravelTimeModel
    hot_pairs: List[Tuple[int, int]]

    # -------------------------------------------------------------- truths
    def ground_truth_path(self, query: RouteQuery) -> List[int]:
        """The driver-preferred (population consensus) route for a query."""
        return self.trajectory_generator.population_preferred_route(query.origin, query.destination)

    # ------------------------------------------------------------- planner
    def build_planner(
        self,
        config: Optional[PlannerConfig] = None,
        prepare_workers: bool = True,
        use_pmf: bool = True,
    ) -> CrowdPlanner:
        """Assemble a :class:`CrowdPlanner` over this scenario."""
        planner_config = config or self.config.planner_config
        planner = CrowdPlanner(
            network=self.network,
            catalog=self.catalog,
            calibrator=self.calibrator,
            sources=self.sources,
            worker_pool=self.worker_pool,
            crowd_backend=self.crowd,
            config=planner_config,
        )
        if prepare_workers:
            planner.prepare_workers(use_pmf=use_pmf)
        return planner

    # ------------------------------------------------------------- queries
    def sample_queries(
        self,
        count: int,
        prefer_hot_pairs: bool = True,
        departure_time_s: float = 8.5 * 3600.0,
        seed: Optional[int] = None,
    ) -> List[RouteQuery]:
        """Sample route-recommendation requests.

        With ``prefer_hot_pairs`` most requests reuse the historical od-pairs
        (where mining has support) and the rest are fresh od-pairs (where it
        does not) — the mix of regimes the paper's system is designed around.
        """
        rng = derive_rng(seed if seed is not None else self.config.seed, "queries")
        node_ids = self.network.node_ids()
        queries: List[RouteQuery] = []
        attempts = 0
        while len(queries) < count and attempts < count * 50 + 100:
            attempts += 1
            if prefer_hot_pairs and self.hot_pairs and rng.random() < 0.7:
                origin, destination = rng.choice(self.hot_pairs)
            else:
                origin, destination = rng.sample(node_ids, 2)
            distance = self.network.node_location(origin).distance_to(
                self.network.node_location(destination)
            )
            if distance < 4 * self.config.block_size_m:
                continue
            try:
                self.ground_truth_path(RouteQuery(origin, destination))
            except NoPathError:
                continue
            queries.append(
                RouteQuery(
                    origin=origin,
                    destination=destination,
                    departure_time_s=departure_time_s,
                )
            )
        return queries


def build_scenario(config: Optional[SyntheticCityConfig] = None) -> Scenario:
    """Build the full synthetic scenario from one configuration object."""
    config = config or SyntheticCityConfig()

    network = generate_grid_city(
        GridCityConfig(
            rows=config.rows,
            cols=config.cols,
            block_size_m=config.block_size_m,
            seed=config.seed,
        )
    )
    travel_time_model = TravelTimeModel()

    # Landmarks and significance (check-ins + taxi visits).
    catalog = generate_landmarks(
        network, LandmarkGeneratorConfig(count=config.num_landmarks, seed=config.seed + 1)
    )
    calibrator = AnchorCalibrator(network, catalog.all())

    trajectory_generator = TrajectoryGenerator(
        network,
        TrajectoryGeneratorConfig(
            num_drivers=config.num_drivers,
            trips_per_driver=config.trips_per_driver,
            num_hot_pairs=config.num_hot_pairs,
            seed=config.seed + 2,
        ),
        travel_time_model=travel_time_model,
    )
    drivers = trajectory_generator.generate_drivers()
    hot_pairs = trajectory_generator.generate_hot_od_pairs()
    trajectories = trajectory_generator.generate(drivers, hot_pairs)

    store = TrajectoryStore(network)
    store.add_many(trajectories)

    checkin_simulator = CheckInSimulator(
        catalog,
        network.bounding_box(),
        CheckInSimulatorConfig(seed=config.seed + 3),
    )
    checkins = checkin_simulator.generate()
    taxi_visits: Dict[int, List[int]] = {}
    for trajectory in trajectories:
        landmark_ids = calibrator.calibrate_path(list(trajectory.source_path))
        taxi_visits.setdefault(trajectory.driver_id, []).extend(landmark_ids)
    catalog = infer_significance(catalog, checkins, taxi_visits)
    # Rebuild the calibrator against the catalogue with significance scores so
    # downstream components share one landmark view.
    calibrator = AnchorCalibrator(network, catalog.all())

    sources: List[RouteSource] = [
        ShortestRouteService(network),
        FastestRouteService(network, travel_time_model),
        AlternativeAwareService(network, travel_time_model),
        MostPopularRouteMiner(network, store, min_support=config.min_support),
        LocalDriverRouteMiner(network, store, min_support=max(1, config.min_support - 1)),
        MostFrequentPathMiner(network, store, min_support=config.min_support),
    ]

    worker_pool = generate_worker_pool(
        network,
        WorkerPopulationConfig(num_workers=config.num_workers, seed=config.seed + 4),
    )

    scenario_holder: Dict[str, Scenario] = {}

    def ground_truth(query: RouteQuery) -> List[int]:
        return trajectory_generator.population_preferred_route(query.origin, query.destination)

    crowd = SimulatedCrowd(
        pool=worker_pool,
        catalog=catalog,
        calibrator=calibrator,
        ground_truth=ground_truth,
        behavior=AnswerBehaviorModel(),
        seed=config.seed + 5,
    )

    scenario = Scenario(
        config=config,
        network=network,
        catalog=catalog,
        calibrator=calibrator,
        store=store,
        sources=sources,
        worker_pool=worker_pool,
        crowd=crowd,
        trajectory_generator=trajectory_generator,
        travel_time_model=travel_time_model,
        hot_pairs=list(hot_pairs),
    )
    scenario_holder["scenario"] = scenario
    return scenario
