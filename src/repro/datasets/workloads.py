"""Query workload generation for the cost / truth-reuse / serving experiments.

The truth-reuse experiment needs a realistic request stream in which some
od-pairs are asked again and again (commuting corridors, airport runs) while
others appear once.  The workload generator produces such a stream with
Zipf-skewed repetition and slight endpoint perturbation, so repeated requests
are near-duplicates rather than exact duplicates — exercising the radius and
time-slot matching of the truth store.

:func:`generate_large_batch_workload` produces the serving layer's stress
workload instead: a large batch whose od-pairs concentrate in spatially
separated *clusters* (distinct neighbourhoods of the city), so the sharded
engine's interaction-closure analysis finds many independent components to
spread across worker processes.  A ``dominant_destination_fraction`` knob
routes part of the stream to one shared destination cell — the skew case the
shard-determinism tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..roadnet.graph import RoadNetwork
from ..routing.base import RouteQuery
from ..utils.rng import derive_rng, shuffled


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of the request stream."""

    num_queries: int = 200
    num_distinct_pairs: int = 40
    zipf_exponent: float = 1.0
    endpoint_jitter_m: float = 150.0
    peak_departure_fraction: float = 0.6
    seed: int = 41

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ConfigurationError("num_queries must be non-negative")
        if self.num_distinct_pairs < 1:
            raise ConfigurationError("num_distinct_pairs must be at least 1")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.endpoint_jitter_m < 0:
            raise ConfigurationError("endpoint_jitter_m must be non-negative")
        if not 0 <= self.peak_departure_fraction <= 1:
            raise ConfigurationError("peak_departure_fraction must be in [0, 1]")


def generate_query_workload(
    network: RoadNetwork,
    base_pairs: Sequence[Tuple[int, int]],
    config: Optional[QueryWorkloadConfig] = None,
) -> List[RouteQuery]:
    """Generate a repetitive request stream over ``base_pairs``.

    Each request picks a base od-pair with Zipf-skewed popularity, then jitters
    both endpoints to a nearby intersection within ``endpoint_jitter_m`` and
    draws a departure time (peak-hour biased).
    """
    config = config or QueryWorkloadConfig()
    if not base_pairs:
        raise ConfigurationError("generate_query_workload needs at least one base od-pair")
    rng = derive_rng(config.seed, "query-workload")

    distinct = list(base_pairs)[: config.num_distinct_pairs]
    weights = [1.0 / (rank + 1) ** config.zipf_exponent for rank in range(len(distinct))]
    total = sum(weights)
    probabilities = [weight / total for weight in weights]

    queries: List[RouteQuery] = []
    for _ in range(config.num_queries):
        index = rng.choices(range(len(distinct)), weights=probabilities, k=1)[0]
        origin, destination = distinct[index]
        origin = _jitter_node(network, origin, config.endpoint_jitter_m, rng)
        destination = _jitter_node(network, destination, config.endpoint_jitter_m, rng)
        if origin == destination:
            continue
        if rng.random() < config.peak_departure_fraction:
            departure = rng.gauss(8.5, 0.5) * 3600.0
        else:
            departure = rng.uniform(6.0, 22.0) * 3600.0
        queries.append(
            RouteQuery(origin=origin, destination=destination, departure_time_s=departure % (24 * 3600))
        )
    return queries


@dataclass(frozen=True)
class LargeBatchWorkloadConfig:
    """Parameters of the sharded-serving stress workload."""

    num_queries: int = 600
    num_clusters: int = 8
    pairs_per_cluster: int = 4
    cluster_radius_m: float = 550.0
    min_pair_distance_m: float = 400.0
    zipf_exponent: float = 1.0
    endpoint_jitter_m: float = 120.0
    dominant_destination_fraction: float = 0.0
    peak_departure_fraction: float = 0.6
    seed: int = 97

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ConfigurationError("num_queries must be non-negative")
        if self.num_clusters < 1:
            raise ConfigurationError("num_clusters must be at least 1")
        if self.pairs_per_cluster < 1:
            raise ConfigurationError("pairs_per_cluster must be at least 1")
        if self.cluster_radius_m <= 0:
            raise ConfigurationError("cluster_radius_m must be positive")
        if self.min_pair_distance_m < 0:
            raise ConfigurationError("min_pair_distance_m must be non-negative")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.endpoint_jitter_m < 0:
            raise ConfigurationError("endpoint_jitter_m must be non-negative")
        if not 0 <= self.dominant_destination_fraction <= 1:
            raise ConfigurationError("dominant_destination_fraction must be in [0, 1]")
        if not 0 <= self.peak_departure_fraction <= 1:
            raise ConfigurationError("peak_departure_fraction must be in [0, 1]")


def generate_large_batch_workload(
    network: RoadNetwork,
    config: Optional[LargeBatchWorkloadConfig] = None,
) -> List[RouteQuery]:
    """Generate a large, spatially clustered batch for the serving engine.

    Cluster centres are chosen by greedy farthest-point sampling over the
    intersections, so the clusters sit in distinct neighbourhoods; each
    cluster contributes a handful of base od-pairs drawn from its
    neighbourhood (both endpoints within ``cluster_radius_m``), and queries
    pick a cluster uniformly, a base pair Zipf-skewed within the cluster, and
    jittered endpoints — the repetition profile production traffic shows,
    replicated per neighbourhood.  With ``dominant_destination_fraction > 0``
    that fraction of the stream is redirected to a single shared destination
    intersection, concentrating one destination grid cell; the shard planner
    must stay correct (and usefully parallel) under that skew.  The stream is
    shuffled, so consecutive queries usually belong to different clusters.
    """
    config = config or LargeBatchWorkloadConfig()
    rng = derive_rng(config.seed, "large-batch-workload")
    node_ids = network.node_ids()
    if len(node_ids) < 2:
        raise ConfigurationError("generate_large_batch_workload needs at least two intersections")

    centers = _farthest_point_centers(network, node_ids, config.num_clusters, rng)
    cluster_pairs: List[List[Tuple[int, int]]] = []
    for center in centers:
        location = network.node_location(center)
        neighbourhood = [node for node, _ in network.nodes_within(location, config.cluster_radius_m)]
        if len(neighbourhood) < 2:
            neighbourhood = [center] + [node for node in node_ids if node != center][:1]
        pairs: List[Tuple[int, int]] = []
        attempts = 0
        while len(pairs) < config.pairs_per_cluster and attempts < config.pairs_per_cluster * 60:
            attempts += 1
            origin, destination = rng.sample(neighbourhood, 2) if len(neighbourhood) >= 2 else (
                neighbourhood[0],
                neighbourhood[0],
            )
            if origin == destination:
                continue
            distance = network.node_location(origin).distance_to(network.node_location(destination))
            if distance < config.min_pair_distance_m:
                continue
            pairs.append((origin, destination))
        if not pairs:
            pairs.append((neighbourhood[0], neighbourhood[-1]))
        cluster_pairs.append(pairs)

    dominant_destination = rng.choice(node_ids)
    weights_by_cluster = [
        [1.0 / (rank + 1) ** config.zipf_exponent for rank in range(len(pairs))]
        for pairs in cluster_pairs
    ]

    queries: List[RouteQuery] = []
    attempts = 0
    max_attempts = config.num_queries * 50 + 100
    while len(queries) < config.num_queries and attempts < max_attempts:
        attempts += 1
        cluster = rng.randrange(len(cluster_pairs))
        pairs = cluster_pairs[cluster]
        index = rng.choices(range(len(pairs)), weights=weights_by_cluster[cluster], k=1)[0]
        origin, destination = pairs[index]
        origin = _jitter_node(network, origin, config.endpoint_jitter_m, rng)
        if rng.random() < config.dominant_destination_fraction:
            destination = dominant_destination
        else:
            destination = _jitter_node(network, destination, config.endpoint_jitter_m, rng)
        if origin == destination:
            continue
        if rng.random() < config.peak_departure_fraction:
            departure = rng.gauss(8.5, 0.5) * 3600.0
        else:
            departure = rng.uniform(6.0, 22.0) * 3600.0
        queries.append(
            RouteQuery(origin=origin, destination=destination, departure_time_s=departure % (24 * 3600))
        )
    return shuffled(queries, rng)


@dataclass(frozen=True)
class StreamWorkloadConfig:
    """Parameters of the steady request stream (consecutive service batches)."""

    num_batches: int = 6
    batch_size: int = 40
    num_clusters: int = 8
    dominant_destination_fraction: float = 0.0
    seed: int = 97

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise ConfigurationError("num_batches must be at least 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if not 0 <= self.dominant_destination_fraction <= 1:
            raise ConfigurationError("dominant_destination_fraction must be in [0, 1]")


def generate_stream_workload(
    network: RoadNetwork,
    config: Optional[StreamWorkloadConfig] = None,
) -> List[List[RouteQuery]]:
    """A steady request stream, as the consecutive batches a service sees.

    The queries are one clustered large-batch workload
    (:func:`generate_large_batch_workload`) chunked into ``num_batches``
    submission batches, so consecutive batches revisit the same od
    neighbourhoods — the warm-truth / warm-worker regime the session-based
    :class:`~repro.serving.RecommendationService` amortises.  Feed the
    batches to ``service.submit``/``results`` (or chain them through
    ``service.stream``); answering them in batch order is equivalent to one
    sequential pass over the concatenated stream, which is the serving
    layer's oracle.
    """
    config = config or StreamWorkloadConfig()
    queries = generate_large_batch_workload(
        network,
        LargeBatchWorkloadConfig(
            num_queries=config.num_batches * config.batch_size,
            num_clusters=config.num_clusters,
            dominant_destination_fraction=config.dominant_destination_fraction,
            seed=config.seed,
        ),
    )
    return [
        queries[start:start + config.batch_size]
        for start in range(0, len(queries), config.batch_size)
    ]


def _farthest_point_centers(
    network: RoadNetwork, node_ids: Sequence[int], count: int, rng
) -> List[int]:
    """Greedy farthest-point sampling of ``count`` well-separated intersections."""
    first = rng.choice(list(node_ids))
    centers = [first]
    distances = {
        node: network.node_location(node).distance_to(network.node_location(first))
        for node in node_ids
    }
    while len(centers) < min(count, len(node_ids)):
        farthest = max(node_ids, key=lambda node: (distances[node], node))
        if distances[farthest] <= 0:
            break
        centers.append(farthest)
        location = network.node_location(farthest)
        for node in node_ids:
            candidate = network.node_location(node).distance_to(location)
            if candidate < distances[node]:
                distances[node] = candidate
    return centers


def _jitter_node(network: RoadNetwork, node_id: int, jitter_m: float, rng) -> int:
    """Return a nearby intersection (possibly the same one)."""
    if jitter_m <= 0:
        return node_id
    location = network.node_location(node_id)
    nearby = network.nodes_within(location, jitter_m)
    if not nearby:
        return node_id
    return rng.choice([candidate for candidate, _ in nearby])
