"""Query workload generation for the cost / truth-reuse experiments.

The truth-reuse experiment needs a realistic request stream in which some
od-pairs are asked again and again (commuting corridors, airport runs) while
others appear once.  The workload generator produces such a stream with
Zipf-skewed repetition and slight endpoint perturbation, so repeated requests
are near-duplicates rather than exact duplicates — exercising the radius and
time-slot matching of the truth store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..roadnet.graph import RoadNetwork
from ..routing.base import RouteQuery
from ..utils.rng import derive_rng


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of the request stream."""

    num_queries: int = 200
    num_distinct_pairs: int = 40
    zipf_exponent: float = 1.0
    endpoint_jitter_m: float = 150.0
    peak_departure_fraction: float = 0.6
    seed: int = 41

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ConfigurationError("num_queries must be non-negative")
        if self.num_distinct_pairs < 1:
            raise ConfigurationError("num_distinct_pairs must be at least 1")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.endpoint_jitter_m < 0:
            raise ConfigurationError("endpoint_jitter_m must be non-negative")
        if not 0 <= self.peak_departure_fraction <= 1:
            raise ConfigurationError("peak_departure_fraction must be in [0, 1]")


def generate_query_workload(
    network: RoadNetwork,
    base_pairs: Sequence[Tuple[int, int]],
    config: Optional[QueryWorkloadConfig] = None,
) -> List[RouteQuery]:
    """Generate a repetitive request stream over ``base_pairs``.

    Each request picks a base od-pair with Zipf-skewed popularity, then jitters
    both endpoints to a nearby intersection within ``endpoint_jitter_m`` and
    draws a departure time (peak-hour biased).
    """
    config = config or QueryWorkloadConfig()
    if not base_pairs:
        raise ConfigurationError("generate_query_workload needs at least one base od-pair")
    rng = derive_rng(config.seed, "query-workload")

    distinct = list(base_pairs)[: config.num_distinct_pairs]
    weights = [1.0 / (rank + 1) ** config.zipf_exponent for rank in range(len(distinct))]
    total = sum(weights)
    probabilities = [weight / total for weight in weights]

    queries: List[RouteQuery] = []
    for _ in range(config.num_queries):
        index = rng.choices(range(len(distinct)), weights=probabilities, k=1)[0]
        origin, destination = distinct[index]
        origin = _jitter_node(network, origin, config.endpoint_jitter_m, rng)
        destination = _jitter_node(network, destination, config.endpoint_jitter_m, rng)
        if origin == destination:
            continue
        if rng.random() < config.peak_departure_fraction:
            departure = rng.gauss(8.5, 0.5) * 3600.0
        else:
            departure = rng.uniform(6.0, 22.0) * 3600.0
        queries.append(
            RouteQuery(origin=origin, destination=destination, departure_time_s=departure % (24 * 3600))
        )
    return queries


def _jitter_node(network: RoadNetwork, node_id: int, jitter_m: float, rng) -> int:
    """Return a nearby intersection (possibly the same one)."""
    if jitter_m <= 0:
        return node_id
    location = network.node_location(node_id)
    nearby = network.nodes_within(location, jitter_m)
    if not nearby:
        return node_id
    return rng.choice([candidate for candidate, _ in nearby])
