"""End-to-end synthetic scenarios and query workloads."""

from .synthetic_city import Scenario, SyntheticCityConfig, build_scenario
from .workloads import QueryWorkloadConfig, generate_query_workload

__all__ = [
    "Scenario",
    "SyntheticCityConfig",
    "build_scenario",
    "QueryWorkloadConfig",
    "generate_query_workload",
]
