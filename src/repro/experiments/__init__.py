"""Experiment harness reproducing the paper's evaluation.

Each ``exp_*`` module regenerates one table/figure of the evaluation (see
DESIGN.md section 3 for the experiment index).  Every experiment exposes a
``run(...)`` function returning an :class:`~repro.experiments.metrics.ExperimentResult`
whose rows can be printed as the corresponding table.
"""

from .metrics import ExperimentResult, route_similarity, route_quality
from .harness import ExperimentRunner

__all__ = [
    "ExperimentResult",
    "route_similarity",
    "route_quality",
    "ExperimentRunner",
]
