"""E2 — Truth reuse: how quickly repeated requests stop needing the crowd.

The control-logic component answers a request from the verified-truth store
whenever a matching truth exists, so as the request stream progresses the
fraction of requests that reach the crowd module should fall.  This experiment
replays a Zipf-skewed query workload and reports, per progress bucket, the
truth hit rate and the number of crowd tasks issued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datasets.synthetic_city import Scenario
from ..datasets.workloads import QueryWorkloadConfig, generate_query_workload
from ..exceptions import CrowdPlannerError, RoutingError
from .metrics import ExperimentResult


@dataclass(frozen=True)
class TruthReuseExperimentConfig:
    """Workload parameters for E2."""

    num_queries: int = 120
    num_distinct_pairs: int = 25
    num_buckets: int = 6
    seed: int = 67


def run(scenario: Scenario, config: Optional[TruthReuseExperimentConfig] = None) -> ExperimentResult:
    """Run E2 on a built scenario."""
    config = config or TruthReuseExperimentConfig()
    planner = scenario.build_planner()
    workload = generate_query_workload(
        scenario.network,
        scenario.hot_pairs,
        QueryWorkloadConfig(
            num_queries=config.num_queries,
            num_distinct_pairs=config.num_distinct_pairs,
            seed=config.seed,
        ),
    )

    result = ExperimentResult(
        experiment_id="E2",
        title="Truth reuse over a repetitive request stream",
        notes={"num_queries": len(workload), "distinct_pairs": config.num_distinct_pairs},
    )

    bucket_size = max(1, len(workload) // config.num_buckets)
    bucket_hits = 0
    bucket_crowd = 0
    bucket_total = 0
    processed = 0
    for query in workload:
        try:
            recommendation = planner.recommend(query)
        except (CrowdPlannerError, RoutingError):
            continue
        processed += 1
        bucket_total += 1
        if recommendation.method == "truth_reuse":
            bucket_hits += 1
        if recommendation.used_crowd:
            bucket_crowd += 1
        if bucket_total >= bucket_size:
            result.add_row(
                requests_processed=processed,
                truth_hit_rate=bucket_hits / bucket_total,
                crowd_task_rate=bucket_crowd / bucket_total,
            )
            bucket_hits = bucket_crowd = bucket_total = 0
    if bucket_total:
        result.add_row(
            requests_processed=processed,
            truth_hit_rate=bucket_hits / bucket_total,
            crowd_task_rate=bucket_crowd / bucket_total,
        )

    stats = planner.statistics
    result.summary.update(
        {
            "overall_truth_hit_rate": stats.truth_hits / max(1, stats.requests),
            "overall_crowd_rate": stats.crowd_tasks / max(1, stats.requests),
            "crowd_tasks": stats.crowd_tasks,
            "requests": stats.requests,
        }
    )
    return result
