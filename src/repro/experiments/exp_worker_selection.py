"""E5 — Worker selection: eligible workers vs. random assignment.

The worker-selection component should route each task to workers who actually
know the area, which translates into more accurate crowd answers.  For a set
of crowd tasks this experiment compares three assignment policies — rated
voting (the paper's), plain familiarity-sum ranking (the biased baseline the
paper argues against) and uniform random assignment — across different values
of ``k`` (workers per task), and reports how often the crowd's verdict matches
the driver-preferred route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.aggregation import AnswerAggregator
from ..core.familiarity import FamiliarityModel
from ..core.task import Task
from ..core.task_generation import TaskGenerator
from ..core.worker_selection import WorkerSelector
from ..datasets.synthetic_city import Scenario
from ..exceptions import TaskGenerationError, WorkerSelectionError
from ..utils.rng import derive_rng
from ..utils.stats import mean
from .metrics import ExperimentResult, route_quality


@dataclass(frozen=True)
class WorkerSelectionExperimentConfig:
    """Workload parameters for E5."""

    num_tasks: int = 15
    worker_counts: Sequence[int] = (1, 3, 5, 7)
    seed: int = 79


def _build_tasks(scenario: Scenario, count: int, seed: int) -> List[Task]:
    """Generate crowd tasks for queries whose candidates genuinely disagree."""
    generator = TaskGenerator(scenario.calibrator, scenario.catalog)
    tasks: List[Task] = []
    queries = scenario.sample_queries(count * 4, seed=seed)
    for query in queries:
        if len(tasks) >= count:
            break
        candidates = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        try:
            tasks.append(generator.generate(query, candidates))
        except TaskGenerationError:
            continue
    return tasks


def _task_accuracy(
    scenario: Scenario,
    task: Task,
    worker_ids: Sequence[int],
    aggregator: AnswerAggregator,
) -> float:
    """Quality (vs. ground truth) of the route the given workers vote for."""
    responses = scenario.crowd.collect_responses(task, list(worker_ids))
    result = aggregator.aggregate(task, responses)
    truth = scenario.ground_truth_path(task.query)
    return route_quality(scenario.network, result.winning_route.path, truth)


def run(
    scenario: Scenario,
    config: Optional[WorkerSelectionExperimentConfig] = None,
) -> ExperimentResult:
    """Run E5 on a built scenario."""
    config = config or WorkerSelectionExperimentConfig()
    rng = derive_rng(config.seed, "worker-selection-experiment")

    familiarity = FamiliarityModel(scenario.worker_pool, scenario.catalog, scenario.config.planner_config)
    familiarity.fit(use_pmf=True)
    selector = WorkerSelector(scenario.worker_pool, familiarity, scenario.config.planner_config)
    aggregator = AnswerAggregator(scenario.config.planner_config)

    tasks = _build_tasks(scenario, config.num_tasks, config.seed)
    result = ExperimentResult(
        experiment_id="E5",
        title="Crowd answer quality: eligible-worker selection vs. baselines",
        notes={"num_tasks": len(tasks)},
    )

    all_worker_ids = scenario.worker_pool.ids()
    for k in config.worker_counts:
        rated: List[float] = []
        familiarity_sum: List[float] = []
        random_assignment: List[float] = []
        for task in tasks:
            try:
                rated_ids = selector.select(task, k, use_rated_voting=True)
                naive_ids = selector.select(task, k, use_rated_voting=False)
            except WorkerSelectionError:
                continue
            random_ids = rng.sample(all_worker_ids, min(k, len(all_worker_ids)))
            rated.append(_task_accuracy(scenario, task, rated_ids, aggregator))
            familiarity_sum.append(_task_accuracy(scenario, task, naive_ids, aggregator))
            random_assignment.append(_task_accuracy(scenario, task, random_ids, aggregator))
        result.add_row(
            workers_per_task=k,
            rated_voting_quality=mean(rated),
            familiarity_sum_quality=mean(familiarity_sum),
            random_assignment_quality=mean(random_assignment),
            tasks_evaluated=len(rated),
        )

    result.summary["rated_vs_random_gain"] = result.mean_of("rated_voting_quality") - result.mean_of(
        "random_assignment_quality"
    )
    return result
