"""E6 — Probabilistic matrix factorization for familiarity completion.

The familiarity matrix is sparse; the paper completes it with PMF so that
workers who have never been asked about a landmark can still be ranked.  This
experiment hides a fraction of the observed worker-landmark scores, completes
the matrix with PMF, and compares the reconstruction error on the held-out
cells against two baselines: predicting zero (no completion) and predicting
the per-landmark mean of the observed scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.familiarity import FamiliarityModel
from ..core.pmf import ProbabilisticMatrixFactorization
from ..datasets.synthetic_city import Scenario
from .metrics import ExperimentResult


@dataclass(frozen=True)
class PMFExperimentConfig:
    """Sweep parameters for E6."""

    holdout_fractions: Sequence[float] = (0.1, 0.25, 0.5)
    latent_dim: int = 8
    seed: int = 83


def _holdout_split(
    matrix: np.ndarray, fraction: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Split observed cells into a training mask and a held-out mask."""
    observed = np.argwhere(matrix > 0)
    holdout_count = max(1, int(len(observed) * fraction))
    indices = rng.choice(len(observed), size=holdout_count, replace=False)
    holdout_mask = np.zeros(matrix.shape, dtype=bool)
    for index in indices:
        row, column = observed[index]
        holdout_mask[row, column] = True
    train_mask = (matrix > 0) & ~holdout_mask
    return train_mask, holdout_mask


def _rmse(predicted: np.ndarray, actual: np.ndarray, mask: np.ndarray) -> float:
    if not mask.any():
        return 0.0
    difference = (predicted - actual)[mask]
    return float(np.sqrt((difference**2).mean()))


def run(scenario: Scenario, config: Optional[PMFExperimentConfig] = None) -> ExperimentResult:
    """Run E6 on a built scenario's worker/landmark population."""
    config = config or PMFExperimentConfig()
    rng = np.random.default_rng(config.seed)

    familiarity = FamiliarityModel(
        scenario.worker_pool, scenario.catalog, scenario.config.planner_config
    )
    matrix = familiarity.build_raw_matrix()

    result = ExperimentResult(
        experiment_id="E6",
        title="Familiarity completion error: PMF vs. no completion vs. column means",
        notes={
            "workers": matrix.shape[0],
            "landmarks": matrix.shape[1],
            "observed_density": float((matrix > 0).mean()),
        },
    )

    for fraction in config.holdout_fractions:
        train_mask, holdout_mask = _holdout_split(matrix, fraction, rng)
        train_matrix = np.where(train_mask, matrix, 0.0)

        pmf = ProbabilisticMatrixFactorization(latent_dim=config.latent_dim, seed=config.seed)
        pmf.fit(train_matrix, train_mask)
        predicted = pmf.predict()

        zero_baseline = np.zeros_like(matrix)
        column_sums = train_matrix.sum(axis=0)
        column_counts = np.maximum(train_mask.sum(axis=0), 1)
        column_means = column_sums / column_counts
        mean_baseline = np.tile(column_means, (matrix.shape[0], 1))

        result.add_row(
            holdout_fraction=fraction,
            pmf_rmse=_rmse(predicted, matrix, holdout_mask),
            zero_baseline_rmse=_rmse(zero_baseline, matrix, holdout_mask),
            column_mean_rmse=_rmse(mean_baseline, matrix, holdout_mask),
            heldout_cells=int(holdout_mask.sum()),
        )

    result.summary["pmf_beats_zero_baseline"] = all(
        row["pmf_rmse"] <= row["zero_baseline_rmse"] for row in result.rows
    )
    return result
