"""Synthetic landmark-route sets for the task-generation experiments.

The landmark-selection efficiency experiment (E4) and parts of the question
experiment (E3) need candidate route sets whose size and landmark count can be
swept independently of any city; this module fabricates such sets directly at
the landmark-route level while guaranteeing that the routes are pairwise
distinguishable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.route import LandmarkRoute
from ..routing.base import CandidateRoute
from ..utils.rng import derive_rng


def make_synthetic_landmark_routes(
    num_routes: int,
    num_landmarks: int,
    landmarks_per_route: int = 8,
    seed: int = 53,
) -> Tuple[List[LandmarkRoute], Dict[int, float]]:
    """Fabricate ``num_routes`` distinguishable landmark routes.

    Returns the routes plus a significance score per landmark id (skewed, so
    selection has meaningful choices to make).  Route paths are synthetic
    two-node paths — only the landmark sequences matter to task generation.
    """
    if num_routes < 2:
        raise ValueError("need at least two routes")
    if num_landmarks < landmarks_per_route:
        raise ValueError("num_landmarks must be at least landmarks_per_route")
    rng = derive_rng(seed, f"synthetic-routes-{num_routes}-{num_landmarks}")

    significance = {
        landmark_id: round(rng.betavariate(1.2, 3.0), 4) for landmark_id in range(num_landmarks)
    }

    routes: List[LandmarkRoute] = []
    seen_sets = set()
    attempts = 0
    while len(routes) < num_routes and attempts < num_routes * 200:
        attempts += 1
        count = max(2, min(num_landmarks, landmarks_per_route + rng.randint(-2, 2)))
        sequence = rng.sample(range(num_landmarks), count)
        signature = frozenset(sequence)
        if signature in seen_sets:
            continue
        seen_sets.add(signature)
        index = len(routes)
        candidate = CandidateRoute(
            path=[index * 2, index * 2 + 1],
            source=f"synthetic-{index}",
            support=rng.randint(0, 10),
        )
        routes.append(LandmarkRoute(candidate, sequence))
    if len(routes) < num_routes:
        raise ValueError("could not fabricate enough distinguishable routes")
    return routes, significance
