"""E7 — Early stopping: answers collected vs. answer quality.

The early-stop component returns the crowd verdict before every assigned
worker has answered, trading a little confidence for lower latency and cost.
This experiment sweeps the early-stop confidence threshold and reports the
mean number of responses actually consumed per task and the quality of the
resulting route, plus the no-early-stop reference (wait for everyone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.aggregation import AnswerAggregator
from ..core.early_stop import EarlyStopMonitor
from ..core.familiarity import FamiliarityModel
from ..core.worker_selection import WorkerSelector
from ..datasets.synthetic_city import Scenario
from ..exceptions import WorkerSelectionError
from ..utils.stats import mean
from .exp_worker_selection import _build_tasks
from .metrics import ExperimentResult, route_quality


@dataclass(frozen=True)
class EarlyStopExperimentConfig:
    """Sweep parameters for E7."""

    num_tasks: int = 15
    workers_per_task: int = 7
    confidence_thresholds: Sequence[float] = (0.6, 0.75, 0.9, 1.01)
    seed: int = 89


def run(scenario: Scenario, config: Optional[EarlyStopExperimentConfig] = None) -> ExperimentResult:
    """Run E7 on a built scenario.

    A threshold above 1.0 disables early stopping (confidence can never reach
    it), providing the wait-for-everyone reference row.
    """
    config = config or EarlyStopExperimentConfig()
    planner_config = scenario.config.planner_config

    familiarity = FamiliarityModel(scenario.worker_pool, scenario.catalog, planner_config)
    familiarity.fit(use_pmf=True)
    selector = WorkerSelector(scenario.worker_pool, familiarity, planner_config)
    tasks = _build_tasks(scenario, config.num_tasks, config.seed)

    result = ExperimentResult(
        experiment_id="E7",
        title="Early stopping: responses consumed vs. answer quality",
        notes={"num_tasks": len(tasks), "workers_per_task": config.workers_per_task},
    )

    for threshold in config.confidence_thresholds:
        # Thresholds > 1 cannot be expressed in PlannerConfig (validated to
        # (0, 1]); build the monitor around a clamped config but keep the
        # unreachable threshold on the monitor itself.
        effective = min(threshold, 1.0)
        sweep_config = planner_config.with_overrides(early_stop_confidence=effective)
        monitor = EarlyStopMonitor(sweep_config)
        disable_early_stop = threshold > 1.0
        aggregator = AnswerAggregator(sweep_config, monitor)

        responses_used: List[float] = []
        qualities: List[float] = []
        stopped_early_count = 0
        for task in tasks:
            try:
                worker_ids = selector.select(task, config.workers_per_task)
            except WorkerSelectionError:
                continue
            responses = scenario.crowd.collect_responses(task, worker_ids)
            if disable_early_stop:
                outcome = aggregator.aggregate(task, responses)
            else:
                outcome = aggregator.collect_with_early_stop(task, responses, expected_total=len(worker_ids))
            truth = scenario.ground_truth_path(task.query)
            qualities.append(route_quality(scenario.network, outcome.winning_route.path, truth))
            responses_used.append(float(len(outcome.responses)))
            if outcome.stopped_early:
                stopped_early_count += 1

        result.add_row(
            confidence_threshold=threshold if threshold <= 1.0 else "disabled",
            mean_responses_used=mean(responses_used),
            mean_route_quality=mean(qualities),
            tasks_stopped_early=stopped_early_count,
            tasks_evaluated=len(responses_used),
        )

    return result
