"""F1 — Landmark significance distribution.

The HITS-style inference should produce a heavily skewed significance
distribution: a handful of widely known landmarks and a long tail of obscure
ones (the White-House-vs-Pennsylvania-Avenue contrast the paper opens with).
This experiment reports the distribution's shape (deciles, Gini coefficient,
share of visits captured by the top landmarks) and checks that significance
correlates with the latent attractiveness that actually generated the visits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datasets.synthetic_city import Scenario
from ..landmarks.generator import intrinsic_attractiveness
from ..utils.stats import gini, percentile
from .metrics import ExperimentResult


@dataclass(frozen=True)
class SignificanceExperimentConfig:
    """Parameters for F1."""

    top_counts: tuple = (5, 10, 20)


def run(scenario: Scenario, config: Optional[SignificanceExperimentConfig] = None) -> ExperimentResult:
    """Run F1 on a built scenario's landmark catalogue."""
    config = config or SignificanceExperimentConfig()
    landmarks = scenario.catalog.all()
    scores = [landmark.significance for landmark in landmarks]
    attractiveness = [intrinsic_attractiveness(landmark) for landmark in landmarks]

    result = ExperimentResult(
        experiment_id="F1",
        title="Distribution of inferred landmark significance",
        notes={"landmarks": len(landmarks)},
    )
    for decile in range(0, 101, 10):
        result.add_row(percentile=decile, significance=percentile(scores, decile))

    correlation = 0.0
    if len(scores) > 1 and np.std(scores) > 0 and np.std(attractiveness) > 0:
        correlation = float(np.corrcoef(scores, attractiveness)[0, 1])

    total = sum(scores)
    ordered = sorted(scores, reverse=True)
    result.summary["gini"] = gini(scores)
    result.summary["attractiveness_correlation"] = correlation
    for count in config.top_counts:
        share = sum(ordered[:count]) / total if total > 0 else 0.0
        result.summary[f"top_{count}_share"] = share
    return result
