"""One-stop runner for the whole experiment suite.

``ExperimentRunner`` builds a scenario once and runs every experiment on it,
collecting the :class:`~repro.experiments.metrics.ExperimentResult` objects and
rendering them as the text report stored in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..datasets.synthetic_city import Scenario, SyntheticCityConfig, build_scenario
from .metrics import ExperimentResult
from . import (
    exp_accuracy,
    exp_disagreement,
    exp_early_stop,
    exp_pmf,
    exp_questions,
    exp_selection_efficiency,
    exp_significance,
    exp_throughput,
    exp_truth_reuse,
    exp_worker_selection,
)


@dataclass
class ExperimentRunner:
    """Runs the reconstructed evaluation suite on one scenario."""

    scenario_config: SyntheticCityConfig = field(default_factory=SyntheticCityConfig)
    scenario: Optional[Scenario] = None

    def ensure_scenario(self) -> Scenario:
        """Build (or reuse) the shared scenario."""
        if self.scenario is None:
            self.scenario = build_scenario(self.scenario_config)
        return self.scenario

    # ------------------------------------------------------------- registry
    def available_experiments(self) -> Dict[str, Callable[[], ExperimentResult]]:
        """Experiment id -> zero-argument callable running it."""
        scenario = self.ensure_scenario()
        return {
            "E1": lambda: exp_accuracy.run(scenario),
            "E2": lambda: exp_truth_reuse.run(scenario),
            "E3": lambda: exp_questions.run(),
            "E4": lambda: exp_selection_efficiency.run(),
            "E5": lambda: exp_worker_selection.run(scenario),
            "E6": lambda: exp_pmf.run(scenario),
            "E7": lambda: exp_early_stop.run(scenario),
            "E8": lambda: exp_throughput.run(scenario),
            "F1": lambda: exp_significance.run(scenario),
            "F2": lambda: exp_disagreement.run(scenario),
        }

    def run(self, experiment_ids: Optional[List[str]] = None) -> List[ExperimentResult]:
        """Run the selected experiments (all of them by default), in id order."""
        registry = self.available_experiments()
        ids = experiment_ids or sorted(registry)
        results = []
        for experiment_id in ids:
            if experiment_id not in registry:
                raise KeyError(f"unknown experiment id {experiment_id!r}")
            results.append(registry[experiment_id]())
        return results

    @staticmethod
    def render_report(results: List[ExperimentResult]) -> str:
        """Render all experiment tables as one text report."""
        sections = [result.to_table() for result in results]
        return "\n\n".join(sections)
