"""F2 — How much the candidate-route sources disagree.

CrowdPlanner only earns its keep when the sources actually disagree — if the
shortest route, the fastest route and the mined popular routes were always the
same, no crowd would be needed.  This experiment buckets od-pairs by
straight-line distance and reports the mean pairwise similarity between the
sources' routes per bucket, plus the fraction of queries whose candidate set
would pass the TR module's agreement check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..datasets.synthetic_city import Scenario
from ..routing.base import CandidateRoute
from ..utils.stats import mean, pairs
from .metrics import ExperimentResult


@dataclass(frozen=True)
class DisagreementExperimentConfig:
    """Workload parameters for F2."""

    num_queries: int = 40
    distance_buckets_m: Sequence[float] = (1_500.0, 2_500.0, 4_000.0, float("inf"))
    seed: int = 97


def _bucket_label(distance: float, edges: Sequence[float]) -> str:
    lower = 0.0
    for edge in edges:
        if distance < edge:
            upper = "inf" if edge == float("inf") else f"{edge / 1000:.1f}km"
            return f"{lower / 1000:.1f}-{upper}"
        lower = edge
    return f">{lower / 1000:.1f}km"


def run(scenario: Scenario, config: Optional[DisagreementExperimentConfig] = None) -> ExperimentResult:
    """Run F2 on a built scenario."""
    config = config or DisagreementExperimentConfig()
    queries = scenario.sample_queries(config.num_queries, seed=config.seed)
    agreement_threshold = scenario.config.planner_config.agreement_threshold

    per_bucket_similarity: Dict[str, List[float]] = {}
    per_bucket_candidates: Dict[str, List[float]] = {}
    per_bucket_agreement: Dict[str, List[float]] = {}

    for query in queries:
        candidates: List[CandidateRoute] = []
        seen = set()
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None or candidate.path in seen:
                continue
            seen.add(candidate.path)
            candidates.append(candidate)
        if len(candidates) < 2:
            continue
        similarities = [a.similarity_to(b) for a, b in pairs(candidates)]
        distance = scenario.network.node_location(query.origin).distance_to(
            scenario.network.node_location(query.destination)
        )
        bucket = _bucket_label(distance, config.distance_buckets_m)
        per_bucket_similarity.setdefault(bucket, []).append(mean(similarities))
        per_bucket_candidates.setdefault(bucket, []).append(float(len(candidates)))
        per_bucket_agreement.setdefault(bucket, []).append(
            1.0 if mean(similarities) >= agreement_threshold else 0.0
        )

    result = ExperimentResult(
        experiment_id="F2",
        title="Disagreement between candidate-route sources by trip distance",
        notes={"num_queries": len(queries), "agreement_threshold": agreement_threshold},
    )
    for bucket in sorted(per_bucket_similarity):
        result.add_row(
            distance_bucket=bucket,
            mean_pairwise_similarity=mean(per_bucket_similarity[bucket]),
            mean_distinct_candidates=mean(per_bucket_candidates[bucket]),
            auto_agreement_rate=mean(per_bucket_agreement[bucket]),
            queries=len(per_bucket_similarity[bucket]),
        )
    all_similarities = [value for values in per_bucket_similarity.values() for value in values]
    result.summary["overall_mean_similarity"] = mean(all_similarities)
    all_agreements = [value for values in per_bucket_agreement.values() for value in values]
    result.summary["overall_auto_agreement_rate"] = mean(all_agreements)
    return result
