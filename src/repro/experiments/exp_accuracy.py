"""E1 — Quality of recommended routes by source.

Reproduces the paper's headline comparison: how closely the routes returned by
web-service routing (shortest / fastest), the popular-route miners (MPR, LDR,
MFP) and the full CrowdPlanner pipeline match the routes experienced drivers
prefer.  The paper's qualitative findings are:

* provider routes deviate from driver-preferred routes;
* among the miners, MFP most often gives the best route;
* CrowdPlanner (which arbitrates between all of them with crowd help) gives
  the best route essentially always.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..datasets.synthetic_city import Scenario
from ..exceptions import CrowdPlannerError, RoutingError
from ..utils.stats import mean
from .metrics import ExperimentResult, exact_match, route_quality


@dataclass(frozen=True)
class AccuracyExperimentConfig:
    """Workload parameters for E1."""

    num_queries: int = 30
    win_similarity_margin: float = 1e-9
    seed: int = 61


def run(scenario: Scenario, config: Optional[AccuracyExperimentConfig] = None) -> ExperimentResult:
    """Run E1 on a built scenario."""
    config = config or AccuracyExperimentConfig()
    planner = scenario.build_planner()
    queries = scenario.sample_queries(config.num_queries, seed=config.seed)

    per_source_quality: Dict[str, List[float]] = defaultdict(list)
    per_source_exact: Dict[str, List[float]] = defaultdict(list)
    per_source_produced: Dict[str, int] = defaultdict(int)
    wins: Dict[str, int] = defaultdict(int)
    judged_queries = 0

    for query in queries:
        truth = scenario.ground_truth_path(query)
        qualities: Dict[str, float] = {}
        for source in scenario.sources:
            candidate = source.recommend_or_none(query)
            if candidate is None:
                continue
            per_source_produced[source.name] += 1
            quality = route_quality(scenario.network, candidate.path, truth)
            qualities[source.name] = quality
            per_source_quality[source.name].append(quality)
            per_source_exact[source.name].append(1.0 if exact_match(candidate.path, truth) else 0.0)

        # The full system.
        try:
            recommendation = planner.recommend(query)
        except (CrowdPlannerError, RoutingError):
            continue
        crowd_quality = route_quality(scenario.network, recommendation.route.path, truth)
        per_source_quality["CrowdPlanner"].append(crowd_quality)
        per_source_exact["CrowdPlanner"].append(
            1.0 if exact_match(recommendation.route.path, truth) else 0.0
        )
        per_source_produced["CrowdPlanner"] += 1
        qualities["CrowdPlanner"] = crowd_quality

        if qualities:
            judged_queries += 1
            best_quality = max(qualities.values())
            for name, quality in qualities.items():
                if quality >= best_quality - config.win_similarity_margin:
                    wins[name] += 1

    result = ExperimentResult(
        experiment_id="E1",
        title="Route quality by recommendation source (vs. driver-preferred routes)",
        notes={"num_queries": len(queries), "judged_queries": judged_queries},
    )
    for name in sorted(per_source_quality, key=lambda n: -mean(per_source_quality[n])):
        result.add_row(
            source=name,
            mean_quality=mean(per_source_quality[name]),
            exact_match_rate=mean(per_source_exact[name]),
            win_rate=wins[name] / judged_queries if judged_queries else 0.0,
            coverage=per_source_produced[name] / len(queries) if queries else 0.0,
        )
    if result.rows:
        result.summary["best_source"] = result.best_row("mean_quality")["source"]
        miner_rows = [row for row in result.rows if row["source"] in {"MPR", "LDR", "MFP"}]
        if miner_rows:
            best_miner = max(miner_rows, key=lambda row: row["mean_quality"])
            result.summary["best_miner"] = best_miner["source"]
    return result
