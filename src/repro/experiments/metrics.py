"""Shared metrics and result containers for the experiment suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..roadnet.graph import RoadNetwork
from ..utils.stats import mean


def route_similarity(path_a: Sequence[int], path_b: Sequence[int]) -> float:
    """Edge-set Jaccard similarity between two node paths (1 = identical)."""
    edges_a = set(zip(path_a, path_a[1:]))
    edges_b = set(zip(path_b, path_b[1:]))
    if not edges_a and not edges_b:
        return 1.0
    union = edges_a | edges_b
    if not union:
        return 1.0
    return len(edges_a & edges_b) / len(union)


def route_quality(
    network: RoadNetwork,
    recommended: Sequence[int],
    ground_truth: Sequence[int],
) -> float:
    """Length-weighted overlap of the recommended route with the driver-preferred route.

    The score is the fraction of the recommended route's length that lies on
    edges the ground-truth route also uses — the measure of "how much of this
    recommendation matches what experienced drivers actually do".
    """
    truth_edges = set(zip(ground_truth, ground_truth[1:]))
    total = 0.0
    shared = 0.0
    for edge in zip(recommended, recommended[1:]):
        length = network.edge(*edge).length_m
        total += length
        if edge in truth_edges:
            shared += length
    if total <= 0:
        return 0.0
    return shared / total


def exact_match(path_a: Sequence[int], path_b: Sequence[int]) -> bool:
    """True if the two node paths are identical."""
    return list(path_a) == list(path_b)


@dataclass
class ExperimentResult:
    """A uniform container for experiment output.

    ``rows`` is a list of dictionaries (one per table row); ``summary`` holds
    headline numbers; ``notes`` records workload parameters for EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        """Values of one column across all rows (missing cells skipped)."""
        return [row[name] for row in self.rows if name in row]

    def mean_of(self, name: str) -> float:
        values = [float(v) for v in self.column(name)]
        return mean(values)

    def best_row(self, name: str, largest: bool = True) -> Dict[str, object]:
        """The row with the largest (or smallest) value of column ``name``."""
        candidates = [row for row in self.rows if name in row]
        if not candidates:
            raise ValueError(f"no row has column {name!r}")
        return (max if largest else min)(candidates, key=lambda row: float(row[name]))

    # ------------------------------------------------------------ rendering
    def to_table(self) -> str:
        """Render the rows as a fixed-width text table."""
        if not self.rows:
            return f"[{self.experiment_id}] {self.title}\n(no rows)"
        columns = list(dict.fromkeys(key for row in self.rows for key in row))
        rendered_rows = [
            {column: _format_cell(row.get(column, "")) for column in columns} for row in self.rows
        ]
        widths = {
            column: max(len(column), *(len(row[column]) for row in rendered_rows))
            for column in columns
        }
        lines = [f"[{self.experiment_id}] {self.title}"]
        header = " | ".join(column.ljust(widths[column]) for column in columns)
        lines.append(header)
        lines.append("-+-".join("-" * widths[column] for column in columns))
        for row in rendered_rows:
            lines.append(" | ".join(row[column].ljust(widths[column]) for column in columns))
        if self.summary:
            lines.append("")
            lines.append("summary: " + ", ".join(f"{k}={_format_cell(v)}" for k, v in self.summary.items()))
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
