"""E3 — Number of questions per task.

Task generation is supposed to keep tasks short.  This experiment measures,
as a function of the number of candidate routes:

* how many landmarks each selection algorithm picks and their mean
  significance (Greedy vs. ILS vs. the keep-every-beneficial-landmark
  baseline), and
* how many questions a worker actually has to answer under ID3 ordering vs.
  asking the selected questions in a random fixed order vs. asking all of
  them (the ablation of the paper's question-ordering contribution).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.landmark_selection import GreedySelector, IncrementalLandmarkSelector
from ..core.question_ordering import build_question_tree
from ..core.route import LandmarkRoute, beneficial_landmarks
from ..utils.rng import derive_rng
from ..utils.stats import mean
from .metrics import ExperimentResult
from .synthetic_routes import make_synthetic_landmark_routes


@dataclass(frozen=True)
class QuestionExperimentConfig:
    """Workload parameters for E3."""

    route_counts: Sequence[int] = (2, 3, 4, 5)
    num_landmarks: int = 20
    landmarks_per_route: int = 6
    trials: int = 3
    seed: int = 71


def _expected_questions_random_order(
    routes: Sequence[LandmarkRoute],
    landmark_ids: Sequence[int],
    rng: random.Random,
    samples: int = 20,
) -> float:
    """Expected questions when the selected questions are asked in random order.

    Questioning stops once the answers so far isolate a single route — the
    fair counterpart of stopping at an ID3 leaf.
    """
    totals = []
    for _ in range(samples):
        order = list(landmark_ids)
        rng.shuffle(order)
        for target in routes:
            remaining = list(routes)
            asked = 0
            for landmark_id in order:
                if len(remaining) <= 1:
                    break
                asked += 1
                answer = target.passes(landmark_id)
                remaining = [route for route in remaining if route.passes(landmark_id) == answer]
            totals.append(asked)
    return mean(totals)


def run(config: Optional[QuestionExperimentConfig] = None) -> ExperimentResult:
    """Run E3 on synthetic candidate route sets."""
    config = config or QuestionExperimentConfig()
    rng = derive_rng(config.seed, "question-experiment")
    result = ExperimentResult(
        experiment_id="E3",
        title="Questions per task: selection algorithm and ordering strategy",
        notes={"trials": config.trials, "num_landmarks": config.num_landmarks},
    )

    for route_count in config.route_counts:
        greedy_sizes: List[float] = []
        greedy_values: List[float] = []
        ils_values: List[float] = []
        baseline_sizes: List[float] = []
        id3_expected: List[float] = []
        random_expected: List[float] = []
        all_questions: List[float] = []

        for trial in range(config.trials):
            routes, significance = make_synthetic_landmark_routes(
                route_count,
                config.num_landmarks,
                config.landmarks_per_route,
                seed=config.seed + trial * 101 + route_count,
            )
            greedy = GreedySelector().select(routes, significance)
            ils = IncrementalLandmarkSelector().select(routes, significance)
            baseline_ids = beneficial_landmarks(routes)

            greedy_sizes.append(len(greedy.landmark_ids))
            greedy_values.append(greedy.value)
            ils_values.append(ils.value)
            baseline_sizes.append(len(baseline_ids))

            tree = build_question_tree(routes, greedy.landmark_ids, significance)
            id3_expected.append(tree.expected_questions())
            random_expected.append(
                _expected_questions_random_order(routes, greedy.landmark_ids, rng)
            )
            all_questions.append(float(len(greedy.landmark_ids)))

        result.add_row(
            candidate_routes=route_count,
            selected_landmarks=mean(greedy_sizes),
            beneficial_landmarks=mean(baseline_sizes),
            greedy_objective=mean(greedy_values),
            ils_objective=mean(ils_values),
            id3_expected_questions=mean(id3_expected),
            random_order_questions=mean(random_expected),
            ask_all_questions=mean(all_questions),
        )

    result.summary["id3_vs_random_saving"] = (
        1.0 - result.mean_of("id3_expected_questions") / max(result.mean_of("random_order_questions"), 1e-9)
    )
    result.summary["selected_vs_beneficial_ratio"] = result.mean_of("selected_landmarks") / max(
        result.mean_of("beneficial_landmarks"), 1e-9
    )
    return result
