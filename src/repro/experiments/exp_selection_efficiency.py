"""E4 — Efficiency of the landmark-selection algorithms.

The paper motivates ILS and GreedySelect with the exponential cost of naive
enumeration.  This experiment sweeps the number of candidate routes and the
candidate-landmark count and measures wall-clock time and the number of sets
each algorithm evaluates; brute force is only run on the smallest settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.landmark_selection import (
    BruteForceSelector,
    GreedySelector,
    IncrementalLandmarkSelector,
)
from ..utils.timer import Timer
from .metrics import ExperimentResult
from .synthetic_routes import make_synthetic_landmark_routes


@dataclass(frozen=True)
class SelectionEfficiencyConfig:
    """Sweep parameters for E4."""

    route_counts: Sequence[int] = (3, 4, 5)
    landmark_counts: Sequence[int] = (12, 16, 20)
    landmarks_per_route: int = 6
    brute_force_limit: int = 16
    seed: int = 73


def run(config: Optional[SelectionEfficiencyConfig] = None) -> ExperimentResult:
    """Run E4 on synthetic candidate route sets."""
    config = config or SelectionEfficiencyConfig()
    result = ExperimentResult(
        experiment_id="E4",
        title="Landmark-selection efficiency: brute force vs. ILS vs. GreedySelect",
        notes={"landmarks_per_route": config.landmarks_per_route},
    )

    for route_count in config.route_counts:
        for landmark_count in config.landmark_counts:
            routes, significance = make_synthetic_landmark_routes(
                route_count,
                landmark_count,
                config.landmarks_per_route,
                seed=config.seed + route_count * 37 + landmark_count,
            )
            row = {
                "candidate_routes": route_count,
                "landmarks": landmark_count,
            }

            greedy = GreedySelector()
            with Timer() as greedy_timer:
                greedy_result = greedy.select(routes, significance)
            row["greedy_time_ms"] = greedy_timer.elapsed * 1000.0
            row["greedy_sets_evaluated"] = greedy_result.evaluated_sets
            row["greedy_value"] = greedy_result.value

            ils = IncrementalLandmarkSelector()
            with Timer() as ils_timer:
                ils_result = ils.select(routes, significance)
            row["ils_time_ms"] = ils_timer.elapsed * 1000.0
            row["ils_sets_evaluated"] = ils_result.evaluated_sets
            row["ils_value"] = ils_result.value

            if landmark_count <= config.brute_force_limit:
                brute = BruteForceSelector()
                with Timer() as brute_timer:
                    brute_result = brute.select(routes, significance)
                row["brute_time_ms"] = brute_timer.elapsed * 1000.0
                row["brute_sets_evaluated"] = brute_result.evaluated_sets
                row["brute_value"] = brute_result.value

            result.add_row(**row)

    greedy_mean = result.mean_of("greedy_time_ms")
    ils_mean = result.mean_of("ils_time_ms")
    brute_values = [float(v) for v in result.column("brute_time_ms")]
    result.summary["greedy_mean_time_ms"] = greedy_mean
    result.summary["ils_mean_time_ms"] = ils_mean
    if brute_values:
        brute_mean = sum(brute_values) / len(brute_values)
        result.summary["brute_mean_time_ms"] = brute_mean
        result.summary["greedy_speedup_vs_brute"] = brute_mean / max(greedy_mean, 1e-9)
    return result
