"""E8 — Serving throughput: sharded batch serving across worker processes.

The serving engine (:mod:`repro.serving`) answers large query batches by
partitioning od-cell components across a process pool, shipping each shard a
destination-cell partition of the truth store, and merging results in
submission order.  This experiment sweeps the worker count over a clustered
large-batch workload (with a dominant destination cell mixed in, the skew
case) and reports, per worker count, the wall time, throughput, speedup over
the sequential oracle, the shard plan's shape — and, crucially, whether the
answers were identical to the sequential run, which is the engine's
correctness contract.

Wall-clock numbers are machine-dependent (a single-core container shows the
sharding *overhead* rather than a speedup); the identical-answers column must
hold everywhere.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..datasets.synthetic_city import Scenario
from ..datasets.workloads import LargeBatchWorkloadConfig, generate_large_batch_workload
from ..serving import ShardedRecommendationEngine, recommendation_fingerprint
from .metrics import ExperimentResult


@dataclass(frozen=True)
class ThroughputExperimentConfig:
    """Workload and sweep parameters for E8."""

    worker_counts: Tuple[int, ...] = (1, 2, 4)
    num_queries: int = 240
    num_clusters: int = 6
    dominant_destination_fraction: float = 0.15
    use_processes: bool = True
    seed: int = 131


def run(scenario: Scenario, config: Optional[ThroughputExperimentConfig] = None) -> ExperimentResult:
    """Run E8 on a built scenario."""
    config = config or ThroughputExperimentConfig()
    workload = generate_large_batch_workload(
        scenario.network,
        LargeBatchWorkloadConfig(
            num_queries=config.num_queries,
            num_clusters=config.num_clusters,
            dominant_destination_fraction=config.dominant_destination_fraction,
            seed=config.seed,
        ),
    )

    # Every run must start from the same planner state; the familiarity fit
    # reads the (shared) worker pool's answer histories, so all planners are
    # built before any batch runs.
    sequential_planner = scenario.build_planner()
    sharded_planners = {workers: scenario.build_planner() for workers in config.worker_counts}

    started = time.perf_counter()
    sequential_results = sequential_planner.recommend_batch(workload)
    sequential_time = time.perf_counter() - started
    oracle = [recommendation_fingerprint(result) for result in sequential_results]

    result = ExperimentResult(
        experiment_id="E8",
        title="Sharded serving throughput vs the sequential oracle",
        notes={
            "num_queries": len(workload),
            "num_clusters": config.num_clusters,
            "dominant_destination_fraction": config.dominant_destination_fraction,
            "use_processes": config.use_processes,
        },
    )

    all_identical = True
    for workers in config.worker_counts:
        engine = ShardedRecommendationEngine(
            sharded_planners[workers], workers=workers, use_processes=config.use_processes
        )
        plan = engine.plan(workload, workers)
        started = time.perf_counter()
        sharded_results = engine.recommend_batch(workload)
        elapsed = time.perf_counter() - started
        identical = [recommendation_fingerprint(r) for r in sharded_results] == oracle
        all_identical = all_identical and identical
        result.add_row(
            workers=workers,
            wall_time_s=elapsed,
            queries_per_s=len(workload) / elapsed if elapsed > 0 else float("inf"),
            speedup_vs_sequential=sequential_time / elapsed if elapsed > 0 else float("inf"),
            shards=len(plan.shards),
            components=plan.num_components,
            largest_shard_fraction=plan.largest_shard_fraction(),
            identical_to_sequential=identical,
        )

    result.summary.update(
        {
            "sequential_wall_time_s": sequential_time,
            "sequential_queries_per_s": (
                len(workload) / sequential_time if sequential_time > 0 else float("inf")
            ),
            "all_runs_identical_to_sequential": all_identical,
            "best_speedup": max((row["speedup_vs_sequential"] for row in result.rows), default=0.0),
        }
    )
    return result
