"""E8 — Serving throughput: the session-based service over a steady stream.

The serving layer (:mod:`repro.serving`) answers a stream of query batches
through a :class:`~repro.serving.RecommendationService`.  This experiment
replays the same steady stream (clustered neighbourhoods with a dominant
destination cell mixed in — the skew case) through every configured backend:
the ``inline`` sequential oracle, the ``pooled`` persistent worker pool at
several pool sizes, ``pipelined`` — the same pool with
``pipeline_window`` batches overlapped by the cross-batch DAG dispatcher —
plus the deprecated per-batch-fork shim as the amortisation baseline.  The
pipelined runs submit the whole stream before collecting, so consecutive
batches are actually pending together and the window can engage.  Per run
it reports wall time, throughput, speedup
over the sequential oracle, how many batches ran on a warm (already-forked)
pool, whether workers were reused without re-forking — and, crucially,
whether every answer was identical to the sequential run, which is the
service's correctness contract.

Wall-clock numbers are machine-dependent (a single-core container shows the
pooling *overhead* rather than a speedup; the fork-amortisation delta of
``pooled`` vs ``per_batch`` survives even there); the identical-answers
column must hold everywhere.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import ServiceConfig
from ..datasets.synthetic_city import Scenario
from ..datasets.workloads import StreamWorkloadConfig, generate_stream_workload
from ..serving import (
    RecommendationService,
    ShardedRecommendationEngine,
    recommendation_fingerprint,
)
from .metrics import ExperimentResult


@dataclass(frozen=True)
class ThroughputExperimentConfig:
    """Workload and sweep parameters for E8."""

    pool_sizes: Tuple[int, ...] = (1, 2, 4)
    backends: Tuple[str, ...] = ("inline", "pooled", "pipelined", "per_batch")
    num_batches: int = 4
    batch_size: int = 60
    num_clusters: int = 6
    dominant_destination_fraction: float = 0.15
    use_processes: bool = True
    #: Overlap depth of the ``pipelined`` runs (1 would be the barrier).
    pipeline_window: int = 4
    seed: int = 131


def _serve_stream(service: RecommendationService, batches: List[list]):
    """Run the stream through a service; returns (responses, wall seconds)."""
    responses = []
    started = time.perf_counter()
    for batch in batches:
        responses.extend(service.results(service.submit(batch)))
    return responses, time.perf_counter() - started


def _serve_stream_pipelined(service: RecommendationService, batches: List[list]):
    """Submit every batch up front, then collect in submission order — the
    client shape that hands the backend full windows to overlap."""
    responses = []
    started = time.perf_counter()
    tickets = [service.submit(batch) for batch in batches]
    for ticket in tickets:
        responses.extend(service.results(ticket))
    return responses, time.perf_counter() - started


def run(scenario: Scenario, config: Optional[ThroughputExperimentConfig] = None) -> ExperimentResult:
    """Run E8 on a built scenario."""
    config = config or ThroughputExperimentConfig()
    batches = generate_stream_workload(
        scenario.network,
        StreamWorkloadConfig(
            num_batches=config.num_batches,
            batch_size=config.batch_size,
            num_clusters=config.num_clusters,
            dominant_destination_fraction=config.dominant_destination_fraction,
            seed=config.seed,
        ),
    )
    num_queries = sum(len(batch) for batch in batches)

    # Every run must start from the same planner state; the familiarity fit
    # reads the (shared) worker pool's answer histories, so all planners are
    # built before any batch runs.
    sequential_planner = scenario.build_planner()
    runs = []
    for backend in config.backends:
        pool_sizes = (1,) if backend == "inline" else config.pool_sizes
        for pool_size in pool_sizes:
            runs.append((backend, pool_size, scenario.build_planner()))

    started = time.perf_counter()
    oracle: List[tuple] = []
    for batch in batches:
        oracle.extend(
            recommendation_fingerprint(result)
            for result in sequential_planner.recommend_batch(batch)
        )
    sequential_time = time.perf_counter() - started

    result = ExperimentResult(
        experiment_id="E8",
        title="Session-based serving throughput vs the sequential oracle",
        notes={
            "num_queries": num_queries,
            "num_batches": len(batches),
            "batch_size": config.batch_size,
            "num_clusters": config.num_clusters,
            "dominant_destination_fraction": config.dominant_destination_fraction,
            "use_processes": config.use_processes,
            "pipeline_window": config.pipeline_window,
        },
    )

    all_identical = True
    for backend_name, pool_size, planner in runs:
        if backend_name == "per_batch":
            # The deprecated shim: fork a fresh pool every batch (baseline).
            engine = ShardedRecommendationEngine(
                planner, workers=pool_size, use_processes=config.use_processes
            )
            started = time.perf_counter()
            results = []
            for batch in batches:
                results.extend(engine.recommend_batch(batch))
            elapsed = time.perf_counter() - started
            fingerprints = [recommendation_fingerprint(r) for r in results]
            warm_batches = 0
            worker_reuse = False
        else:
            pipelined = backend_name == "pipelined"
            service_config = ServiceConfig.from_planner_config(
                planner.config,
                backend="pooled" if pipelined else backend_name,
                pool_size=pool_size,
                use_processes=config.use_processes,
                pipeline_window=config.pipeline_window if pipelined else 1,
                max_pending_batches=max(16, len(batches)),
            )
            with RecommendationService(planner, service_config) as service:
                serve = _serve_stream_pipelined if pipelined else _serve_stream
                responses, elapsed = serve(service, batches)
                pids_per_batch = {}
                for response in responses:
                    if response.provenance.worker_pid is not None:
                        pids_per_batch.setdefault(response.provenance.batch_id, set()).add(
                            response.provenance.worker_pid
                        )
            fingerprints = [recommendation_fingerprint(r.result) for r in responses]
            warm_batches = len({r.provenance.batch_id for r in responses if r.provenance.warm_pool})
            if backend_name == "pooled" and len(pids_per_batch) > 1:
                all_pids = set().union(*pids_per_batch.values())
                # Real reuse means actual pool workers (not the parent, which
                # is the pid the inline fallback stamps) served every batch.
                worker_reuse = (
                    len(all_pids) <= max(pool_size, 1) and os.getpid() not in all_pids
                )
            else:
                worker_reuse = False

        identical = fingerprints == oracle
        all_identical = all_identical and identical
        result.add_row(
            backend=backend_name,
            pool_size=pool_size,
            wall_time_s=elapsed,
            queries_per_s=num_queries / elapsed if elapsed > 0 else float("inf"),
            speedup_vs_sequential=sequential_time / elapsed if elapsed > 0 else float("inf"),
            warm_batches=warm_batches,
            workers_reused=worker_reuse,
            identical_to_sequential=identical,
        )

    result.summary.update(
        {
            "sequential_wall_time_s": sequential_time,
            "sequential_queries_per_s": (
                num_queries / sequential_time if sequential_time > 0 else float("inf")
            ),
            "all_runs_identical_to_sequential": all_identical,
            "best_speedup": max((row["speedup_vs_sequential"] for row in result.rows), default=0.0),
        }
    )
    return result
