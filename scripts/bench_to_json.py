#!/usr/bin/env python
"""Run the hot-path microbenchmarks and write ``BENCH_hot_paths.json``.

The JSON file is the repo's performance trajectory: each entry records the
per-benchmark timings pytest-benchmark measured plus the compiled-vs-reference
speedup per group.  Future perf PRs regenerate the file and are judged
against the recorded speedups.

Usage::

    python scripts/bench_to_json.py                 # run + write BENCH_hot_paths.json
    python scripts/bench_to_json.py --out other.json
    python scripts/bench_to_json.py --pytest-args="-k dijkstra"
"""

from __future__ import annotations

import argparse
import json
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "benchmarks" / "bench_hot_paths.py"

#: benchmark groups where a ``*_compiled``/``*_sparse`` fast path is paired
#: with a ``*_reference``/``*_dense`` oracle; the ratio of their mean times
#: is the group's recorded speedup.
_PAIRED_SUFFIXES = (("_compiled", "_reference"), ("_sparse", "_dense"))

#: extra-info keys the hotspot suite reports (``benchmark.extra_info``):
#: the skew of the shard plan before/after splitting plus the sub-shard
#: chain depth — carried into the trajectory so CI can show the delta.
_SKEW_KEYS = (
    "largest_shard_fraction_before",
    "largest_shard_fraction_after",
    "chain_depth",
)


def run_benchmarks(pytest_args: str) -> dict:
    """Run the hot-path benchmark file, returning pytest-benchmark's JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_FILE),
            "-q",
            "--benchmark-only",
            f"--benchmark-json={json_path}",
            *shlex.split(pytest_args),
        ]
        completed = subprocess.run(command, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit(completed.returncode)
        return json.loads(json_path.read_text())


def summarise(raw: dict) -> dict:
    """Compress pytest-benchmark output into the trajectory schema."""
    benchmarks = {}
    groups: dict = {}
    group_wire_bytes: dict = {}
    skew: dict = {}
    for entry in raw.get("benchmarks", []):
        stats = entry["stats"]
        name = entry["name"]
        benchmarks[name] = {
            "group": entry.get("group"),
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        extra = entry.get("extra_info", {})
        wire = extra.get("wire_bytes")
        if wire is not None:
            benchmarks[name]["wire_bytes"] = int(wire)
            group_wire_bytes.setdefault(entry.get("group"), {})[name] = int(wire)
        if all(key in extra for key in _SKEW_KEYS):
            profile = {key: extra[key] for key in _SKEW_KEYS}
            benchmarks[name].update(profile)
            skew[entry.get("group")] = profile
        groups.setdefault(entry.get("group"), {})[name] = stats["mean"]

    speedups = {}
    for group, members in groups.items():
        for fast_suffix, slow_suffix in _PAIRED_SUFFIXES:
            fast = [v for k, v in members.items() if k.endswith(fast_suffix)]
            slow = [v for k, v in members.items() if k.endswith(slow_suffix)]
            if len(fast) == 1 and len(slow) == 1 and fast[0] > 0:
                speedups[group] = round(slow[0] / fast[0], 3)

    # Suites whose pair reports payload sizes (``benchmark.extra_info
    # ["wire_bytes"]``) additionally record bytes-on-wire and the
    # compiled-vs-reference shrink factor, e.g. the truth wire codec.
    wire_bytes = {}
    for group, members in group_wire_bytes.items():
        for fast_suffix, slow_suffix in _PAIRED_SUFFIXES:
            fast = [v for k, v in members.items() if k.endswith(fast_suffix)]
            slow = [v for k, v in members.items() if k.endswith(slow_suffix)]
            if len(fast) == 1 and len(slow) == 1 and fast[0] > 0:
                wire_bytes[group] = {
                    "compiled": fast[0],
                    "reference": slow[0],
                    "shrink": round(slow[0] / fast[0], 3),
                }

    return {
        "suite": "hot_paths",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "python": raw.get("machine_info", {}).get("python_version"),
        "datetime": raw.get("datetime"),
        "benchmarks": benchmarks,
        "speedups": speedups,
        "wire_bytes": wire_bytes,
        "skew": skew,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_hot_paths.json"))
    parser.add_argument("--pytest-args", default="", help="extra args passed to pytest")
    args = parser.parse_args()

    summary = summarise(run_benchmarks(args.pytest_args))
    out_path = Path(args.out)
    out_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    for group, speedup in sorted(summary["speedups"].items()):
        print(f"  {group}: {speedup}x vs reference")


if __name__ == "__main__":
    main()
