#!/usr/bin/env python
"""Guard the hot-path performance trajectory.

Re-runs the hot-path microbenchmarks and compares each suite's
speedup-vs-reference against the committed ``BENCH_hot_paths.json``: the check
fails when any suite drops below ``--threshold`` (default 0.7) times its
committed speedup — i.e. a fast path that lost more than ~30% of its recorded
advantage over the preserved oracle.  Absolute timings are machine-dependent,
but the fast/reference *ratio* is measured on the same machine in the same
run, which makes it a portable regression signal.

Usage::

    python scripts/bench_check.py                   # re-run + compare
    python scripts/bench_check.py --threshold 0.5   # looser gate
    python scripts/bench_check.py --candidate f.json  # compare a prior run
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from bench_to_json import run_benchmarks, summarise

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_hot_paths.json"


def compare(committed: dict, candidate: dict, threshold: float) -> list:
    """Return ``(group, committed, measured, floor)`` rows that regressed."""
    failures = []
    for group, recorded in sorted(committed.get("speedups", {}).items()):
        measured = candidate.get("speedups", {}).get(group)
        floor = recorded * threshold
        if measured is None:
            failures.append((group, recorded, None, floor))
        elif measured < floor:
            failures.append((group, recorded, measured, floor))
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.7,
        help="minimum fraction of the committed speedup each suite must keep",
    )
    parser.add_argument(
        "--trajectory",
        default=str(TRAJECTORY),
        help="committed trajectory file to compare against",
    )
    parser.add_argument(
        "--candidate",
        default=None,
        help="use an existing summary JSON instead of re-running the benchmarks",
    )
    parser.add_argument("--pytest-args", default="", help="extra args passed to pytest")
    args = parser.parse_args()
    if not 0.0 < args.threshold <= 1.0:
        parser.error("--threshold must be in (0, 1]")

    committed = json.loads(Path(args.trajectory).read_text())
    if args.candidate:
        candidate = json.loads(Path(args.candidate).read_text())
    else:
        candidate = summarise(run_benchmarks(args.pytest_args))

    for group, measured in sorted(candidate.get("speedups", {}).items()):
        recorded = committed.get("speedups", {}).get(group)
        recorded_text = f"{recorded:.2f}x committed" if recorded else "new suite"
        print(f"  {group}: {measured:.2f}x measured ({recorded_text})")

    failures = compare(committed, candidate, args.threshold)
    if failures:
        print(f"\nFAIL: {len(failures)} suite(s) below {args.threshold:.0%} of the trajectory:")
        for group, recorded, measured, floor in failures:
            measured_text = "missing" if measured is None else f"{measured:.2f}x"
            print(f"  {group}: {measured_text} < floor {floor:.2f}x (committed {recorded:.2f}x)")
        return 1
    print(f"\nOK: every suite holds >= {args.threshold:.0%} of its committed speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
