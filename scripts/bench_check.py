#!/usr/bin/env python
"""Guard the hot-path performance trajectory.

Re-runs the hot-path microbenchmarks and compares each suite's
speedup-vs-reference against the committed ``BENCH_hot_paths.json``: the check
fails when any suite drops below ``--threshold`` (default 0.7) times its
committed speedup — i.e. a fast path that lost more than ~30% of its recorded
advantage over the preserved oracle.  Absolute timings are machine-dependent,
but the fast/reference *ratio* is measured on the same machine in the same
run, which makes it a portable regression signal.

Usage::

    python scripts/bench_check.py                   # re-run + compare
    python scripts/bench_check.py --threshold 0.5   # looser gate
    python scripts/bench_check.py --candidate f.json  # compare a prior run

In CI the committed-vs-measured delta table is additionally appended as
Markdown to ``$GITHUB_STEP_SUMMARY`` (or any file passed via
``--summary-file``), so perf drift is visible on the PR's job summary even
when the gate passes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from bench_to_json import run_benchmarks, summarise

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY = REPO_ROOT / "BENCH_hot_paths.json"


def compare(committed: dict, candidate: dict, threshold: float) -> list:
    """Return ``(group, committed, measured, floor)`` rows that regressed."""
    failures = []
    for group, recorded in sorted(committed.get("speedups", {}).items()):
        measured = candidate.get("speedups", {}).get(group)
        floor = recorded * threshold
        if measured is None:
            failures.append((group, recorded, None, floor))
        elif measured < floor:
            failures.append((group, recorded, measured, floor))
    return failures


def _wire_bytes_text(summary: dict, group: str) -> str:
    """Render a suite's bytes-on-wire record (``—`` when it has none)."""
    record = summary.get("wire_bytes", {}).get(group)
    if not record:
        return "—"
    compiled, shrink = record.get("compiled"), record.get("shrink")
    if compiled is None or shrink is None:
        return "—"
    return f"{compiled / 1024:.1f} KiB ({shrink:.1f}x smaller)"


def _skew_text(summary: dict, group: str) -> str:
    """Render a suite's shard-skew record (``—`` when it has none)."""
    record = summary.get("skew", {}).get(group)
    if not record:
        return "—"
    before = record.get("largest_shard_fraction_before")
    after = record.get("largest_shard_fraction_after")
    depth = record.get("chain_depth")
    if before is None or after is None or depth is None:
        return "—"
    return f"{before:.2f}→{after:.2f} (depth {depth})"


def render_summary_markdown(committed: dict, candidate: dict, threshold: float, failures: list) -> str:
    """Markdown delta table of committed vs measured speedups per suite.

    Suites that record payload sizes (the truth wire codec) get a
    wire-bytes column, and suites that record a shard-skew profile (the
    hotspot chain) a largest-shard-fraction before→after column with the
    sub-shard chain depth, so payload and skew regressions surface on the
    job summary alongside timing drift.
    """
    failed_groups = {group for group, *_ in failures}
    lines = [
        "### Hot-path speedup trajectory (fast path vs preserved oracle)",
        "",
        "| suite | committed | measured | delta | wire bytes | largest shard | status |",
        "|---|---:|---:|---:|---:|---:|:---|",
    ]
    groups = sorted(set(committed.get("speedups", {})) | set(candidate.get("speedups", {})))
    for group in groups:
        recorded = committed.get("speedups", {}).get(group)
        measured = candidate.get("speedups", {}).get(group)
        recorded_text = f"{recorded:.2f}x" if recorded is not None else "—"
        measured_text = f"{measured:.2f}x" if measured is not None else "missing"
        if recorded and measured:
            delta = (measured - recorded) / recorded
            delta_text = f"{delta:+.1%}"
        elif recorded is None and measured is not None:
            delta_text = "new suite"
        else:
            delta_text = "—"
        wire_text = _wire_bytes_text(candidate, group)
        if wire_text == "—":
            # No measurement this run: show the committed figure but label
            # it, so a suite that stopped reporting payload sizes cannot
            # pass stale data off as measured.
            recorded_wire = _wire_bytes_text(committed, group)
            if recorded_wire != "—":
                wire_text = f"{recorded_wire} (committed)"
        skew_text = _skew_text(candidate, group)
        if skew_text == "—":
            recorded_skew = _skew_text(committed, group)
            if recorded_skew != "—":
                skew_text = f"{recorded_skew} (committed)"
        status = "❌ regressed" if group in failed_groups else "✅"
        lines.append(
            f"| {group} | {recorded_text} | {measured_text} | {delta_text} "
            f"| {wire_text} | {skew_text} | {status} |"
        )
    lines.append("")
    if failures:
        lines.append(
            f"**FAIL** — {len(failures)} suite(s) below {threshold:.0%} of the committed speedup."
        )
    else:
        lines.append(f"**OK** — every suite holds ≥ {threshold:.0%} of its committed speedup.")
    lines.append("")
    return "\n".join(lines)


def write_summary(markdown: str, summary_file: str | None) -> None:
    """Append the table to --summary-file and/or $GITHUB_STEP_SUMMARY."""
    targets = [summary_file, os.environ.get("GITHUB_STEP_SUMMARY")]
    for target in targets:
        if not target:
            continue
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.7,
        help="minimum fraction of the committed speedup each suite must keep",
    )
    parser.add_argument(
        "--trajectory",
        default=str(TRAJECTORY),
        help="committed trajectory file to compare against",
    )
    parser.add_argument(
        "--candidate",
        default=None,
        help="use an existing summary JSON instead of re-running the benchmarks",
    )
    parser.add_argument("--pytest-args", default="", help="extra args passed to pytest")
    parser.add_argument(
        "--summary-file",
        default=None,
        help="append the Markdown delta table here (always also appended to "
        "$GITHUB_STEP_SUMMARY when that is set)",
    )
    args = parser.parse_args()
    if not 0.0 < args.threshold <= 1.0:
        parser.error("--threshold must be in (0, 1]")

    committed = json.loads(Path(args.trajectory).read_text())
    if args.candidate:
        candidate = json.loads(Path(args.candidate).read_text())
    else:
        candidate = summarise(run_benchmarks(args.pytest_args))

    for group, measured in sorted(candidate.get("speedups", {}).items()):
        recorded = committed.get("speedups", {}).get(group)
        recorded_text = f"{recorded:.2f}x committed" if recorded else "new suite"
        print(f"  {group}: {measured:.2f}x measured ({recorded_text})")

    failures = compare(committed, candidate, args.threshold)
    write_summary(
        render_summary_markdown(committed, candidate, args.threshold, failures),
        args.summary_file,
    )
    if failures:
        print(f"\nFAIL: {len(failures)} suite(s) below {args.threshold:.0%} of the trajectory:")
        for group, recorded, measured, floor in failures:
            measured_text = "missing" if measured is None else f"{measured:.2f}x"
            print(f"  {group}: {measured_text} < floor {floor:.2f}x (committed {recorded:.2f}x)")
        return 1
    print(f"\nOK: every suite holds >= {args.threshold:.0%} of its committed speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
