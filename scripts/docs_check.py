#!/usr/bin/env python
"""Docs lint: internal links resolve and the README matches the examples.

Checks, over ``README.md`` and ``docs/*.md``:

1. every relative markdown link ``[text](target)`` points at a file that
   exists (anchors are checked against the target file's headings, slugified
   the way GitHub does);
2. every ``examples/*.py`` is listed in the README's Examples section, and
   the description the README gives is the first line of the example's
   module docstring — so the index can never drift from the scripts.

Run from anywhere: paths resolve against the repo root.  Exits non-zero
with one line per problem (consumed by ``scripts/ci.sh`` and the CI lint
job).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` inline links; images share the syntax (leading ``!``).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _doc_files():
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {_slugify(m.group(1)) for m in _HEADING.finditer(path.read_text())}


def _check_links(errors: list) -> None:
    for doc in _doc_files():
        if not doc.exists():
            errors.append(f"{doc.relative_to(ROOT)}: file missing")
            continue
        for match in _LINK.finditer(doc.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, anchor = target.partition("#")
            resolved = (doc.parent / target).resolve() if target else doc
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {match.group(1)}"
                )
                continue
            if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
                errors.append(
                    f"{doc.relative_to(ROOT)}: broken anchor -> {match.group(1)}"
                )


def _docstring_first_line(path: Path) -> str:
    doc = ast.get_docstring(ast.parse(path.read_text())) or ""
    return doc.strip().splitlines()[0].strip() if doc.strip() else ""


def _check_examples(errors: list) -> None:
    readme = (ROOT / "README.md").read_text()
    # The README hard-wraps prose, so compare with whitespace collapsed.
    flat = re.sub(r"\s+", " ", readme)
    for example in sorted((ROOT / "examples").glob("*.py")):
        rel = f"examples/{example.name}"
        first_line = _docstring_first_line(example)
        if not first_line:
            errors.append(f"{rel}: missing module docstring")
            continue
        if rel not in readme:
            errors.append(f"README.md: {rel} is not listed")
            continue
        if re.sub(r"\s+", " ", first_line) not in flat:
            errors.append(
                f"README.md: description for {rel} does not match its "
                f"docstring first line: {first_line!r}"
            )


def main() -> int:
    errors: list = []
    _check_links(errors)
    _check_examples(errors)
    for error in errors:
        print(f"docs_check: {error}", file=sys.stderr)
    if errors:
        print(f"docs_check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    docs = len(_doc_files())
    examples = len(list((ROOT / "examples").glob("*.py")))
    print(f"docs_check: OK ({docs} docs, {examples} examples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
