#!/usr/bin/env bash
# CI entry point.
#
#   scripts/ci.sh            # fast tier: tests minus @slow, then the
#                            # benchmark suites with timing disabled (so
#                            # benchmark code is exercised for correctness
#                            # without paying for timed rounds)
#   scripts/ci.sh --all      # full tier: every test including @slow
#   scripts/ci.sh --chaos    # only the @chaos fault-injection suites
#                            # (hedged stragglers, supervision, recovery):
#                            # the fast standalone smoke leg CI runs per PR
#   scripts/ci.sh --bench    # additionally run the timed benchmarks into
#                            # bench_candidate.json and gate the measured
#                            # speedups against the committed
#                            # BENCH_hot_paths.json via scripts/bench_check.py
#   scripts/ci.sh --cov      # collect pytest coverage for src/repro into
#                            # coverage.xml (skipped with a warning when
#                            # pytest-cov is not installed, so offline dev
#                            # containers keep working)
#
# If ruff is installed, lint + format checks run first (CI installs it; the
# offline dev container may not have it, so it is skipped when absent).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_all=0
run_bench=0
run_cov=0
run_chaos=0
for arg in "$@"; do
    case "$arg" in
        --all) run_all=1 ;;
        --bench) run_bench=1 ;;
        --chaos) run_chaos=1 ;;
        --cov) run_cov=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

if [[ "$run_chaos" == 1 ]]; then
    echo "== chaos smoke (fault injection, fast tier) =="
    python -m pytest -x -q -m "chaos and not slow"
    exit 0
fi

cov_args=()
if [[ "$run_cov" == 1 ]]; then
    if python -c "import pytest_cov" >/dev/null 2>&1; then
        cov_args=(--cov=repro --cov-report=xml:coverage.xml --cov-report=term)
    else
        echo "WARNING: --cov requested but pytest-cov is not installed; running without coverage"
    fi
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== lint (ruff) =="
    ruff check src
    ruff format --check src
fi

echo "== docs lint =="
python scripts/docs_check.py

echo "== tier-1 tests =="
if [[ "$run_all" == 1 ]]; then
    python -m pytest -x -q ${cov_args[@]+"${cov_args[@]}"}
else
    python -m pytest -x -q -m "not slow" ${cov_args[@]+"${cov_args[@]}"}
fi

echo "== benchmarks (timing disabled) =="
python -m pytest benchmarks/bench_hot_paths.py -q --benchmark-disable

if [[ "$run_bench" == 1 ]]; then
    echo "== hot-path benchmark trajectory (timed) =="
    python scripts/bench_to_json.py --out bench_candidate.json
    echo "== perf-regression gate =="
    python scripts/bench_check.py --candidate bench_candidate.json
fi
