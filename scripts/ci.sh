#!/usr/bin/env bash
# CI entry point: tier-1 tests, then the benchmark suites with timing
# disabled (so benchmark code is exercised for correctness and stays
# import-clean without paying for timed rounds).
#
#   scripts/ci.sh            # tests + un-timed benchmarks
#   scripts/ci.sh --bench    # additionally regenerate BENCH_hot_paths.json
#                            # via scripts/bench_to_json.py (timed, slower)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== benchmarks (timing disabled) =="
python -m pytest benchmarks/bench_hot_paths.py -q --benchmark-disable

if [[ "${1:-}" == "--bench" ]]; then
    echo "== hot-path benchmark trajectory =="
    python scripts/bench_to_json.py
fi
